"""RCC baseline.

RCC (Gupta et al., ICDE 2021) runs concurrent Byzantine commit algorithm
(BCA) instances whose outputs are interleaved round-robin — the same
pre-determined global ordering behaviour as ISS for the purposes of the
paper's evaluation.  RCC's distinguishing mechanism is *wait-free leader
replacement*: a leader whose instance lags the others by more than
``lag_threshold`` blocks is replaced without stopping the other instances.
The evaluation's honest stragglers are calibrated not to trigger replacement
(they slow down without appearing faulty), so RCC tracks ISS closely; the
replacement machinery is still implemented and unit-tested.
"""

from __future__ import annotations

from typing import Dict, List

from repro.consensus.pbft import PBFTInstance
from repro.core.block import Block
from repro.core.ordering import ConfirmedBlock, GlobalOrderer
from repro.core.predetermined import PredeterminedOrderer
from repro.protocols.base import MultiBFTReplica, MultiBFTSystem


class RCCReplica(MultiBFTReplica):
    """A replica running RCC."""

    uses_epochs = False

    #: number of blocks an instance may lag behind the front-runner before its
    #: leader is considered for replacement
    lag_threshold: int = 32

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rounds_committed: Dict[int, int] = {i: 0 for i in range(self.config.m)}
        self.replacement_requests: List[int] = []

    def build_orderer(self) -> GlobalOrderer:
        return PredeterminedOrderer(
            num_instances=self.config.m, retain_blocks=self.retain_history
        )

    def instance_class(self):
        return PBFTInstance

    # ---------------------------------------------------------- lag tracking
    def on_partial_commit(self, block: Block) -> None:
        self._rounds_committed[block.instance] = max(
            self._rounds_committed.get(block.instance, 0), block.round
        )
        super().on_partial_commit(block)
        self._check_lagging_instances()

    def _check_lagging_instances(self) -> None:
        """Wait-free detection of lagging leaders (RCC Sec. 3 mechanism)."""
        if not self._rounds_committed:
            return
        front = max(self._rounds_committed.values())
        for instance_id, round in self._rounds_committed.items():
            if front - round > self.lag_threshold and instance_id not in self.replacement_requests:
                self.replacement_requests.append(instance_id)

    def lagging_instances(self) -> List[int]:
        """Instances currently flagged for leader replacement."""
        return list(self.replacement_requests)


class RCCSystem(MultiBFTSystem):
    replica_class = RCCReplica
