"""Mir-BFT baseline.

Mir (Stathakopoulou et al., JSys 2022) is the predecessor of ISS: the same
pre-determined interleaving of instance logs into a global log, but with a
heavier normal path — every replica re-verifies client request signatures in
each batch and epochs end eagerly when any leader is suspected.  In the
paper's evaluation Mir tracks ISS/RCC closely but with somewhat lower
throughput and higher latency even without stragglers (Fig. 5).

We model the protocol difference that matters at the measured scale: the
per-batch request re-verification, charged as additional verify operations
and a small per-proposal processing delay at every replica.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.consensus.messages import PrePrepare
from repro.consensus.pbft import PBFTInstance
from repro.core.ordering import GlobalOrderer
from repro.core.predetermined import PredeterminedOrderer
from repro.protocols.base import MultiBFTReplica, MultiBFTSystem
from repro.workload.transactions import Batch


#: extra CPU charged per transaction for client-signature re-verification,
#: expressed as a fraction of a normal signature verification
REQUEST_VERIFICATION_FRACTION = 0.02


class MirPBFTInstance(PBFTInstance):
    """PBFT instance with Mir's per-batch request re-verification cost."""

    #: the request re-verification is accounted *before* the entry verify,
    #: so this handler opts out of the dispatch-site accounting and records
    #: both itself, preserving the historical accumulation order bit-exactly
    SELF_ACCOUNTING = frozenset({PrePrepare})

    def _on_pre_prepare(self, sender: int, message: PrePrepare) -> None:
        if message.tx_count:
            extra_verifies = max(1, int(message.tx_count * REQUEST_VERIFICATION_FRACTION))
            self.context.record_crypto("verify", count=extra_verifies)
        self.context.record_crypto("verify")  # the entry verification
        super()._on_pre_prepare(sender, message)


class MirReplica(MultiBFTReplica):
    """A replica running Mir-BFT."""

    uses_epochs = False

    def build_orderer(self) -> GlobalOrderer:
        return PredeterminedOrderer(
            num_instances=self.config.m, retain_blocks=self.retain_history
        )

    def instance_class(self):
        return MirPBFTInstance


class MirSystem(MultiBFTSystem):
    replica_class = MirReplica
