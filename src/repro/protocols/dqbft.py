"""DQBFT baseline: dynamic ordering through a centralised ordering instance.

DQBFT (Arun & Ravindran, PVLDB 2022) partially decentralises consensus: the
``m`` worker instances only partially commit blocks, and one additional
*ordering instance* (a regular PBFT instance whose leader is the sequencer)
decides the global order by committing batches of block references.  This
removes ISS's rigid interleaving — so it tolerates stragglers in worker
instances — but every block pays the ordering instance's extra consensus
latency, the sequencer is a single bottleneck at scale, and nothing ties the
decided order to block generation time (no causality guarantee).
"""

from __future__ import annotations

from typing import Any, List

from repro.consensus.base import InstanceConfig
from repro.consensus.pbft import PBFTInstance
from repro.core.block import Block, BlockId
from repro.core.dqbft_ordering import DQBFTOrderer
from repro.core.ordering import ConfirmedBlock, GlobalOrderer
from repro.protocols.base import MultiBFTReplica, MultiBFTSystem, ReplicaInstanceContext
from repro.workload.transactions import Batch


class DQBFTReplica(MultiBFTReplica):
    """A replica running DQBFT (m worker instances + 1 ordering instance)."""

    uses_epochs = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.ordering_instance_id = self.config.m
        ordering_instance = self._build_ordering_instance()
        ordering_instance.retain_blocks = self.retain_history
        self.instances[self.ordering_instance_id] = ordering_instance
        self._build_route()  # include the ordering instance in the fast path
        # Blocks this replica (as the sequencer) still has to sequence.
        self._pending_decisions: List[BlockId] = []

    # ------------------------------------------------------------- factories
    def build_orderer(self) -> GlobalOrderer:
        return DQBFTOrderer(
            num_instances=self.config.m, retain_blocks=self.retain_history
        )

    def instance_class(self):
        return PBFTInstance

    def _build_ordering_instance(self) -> PBFTInstance:
        inst_config = InstanceConfig(
            instance_id=self.ordering_instance_id,
            replica_id=self.node_id,
            n=self.config.n,
            batch_size=self.config.batch_size,
            epoch_length=self.config.epoch_length,
            view_change_timeout=self.config.view_change_timeout,
            tx_payload_bytes=64,  # ordering batches carry block references
            compat_flags=self.config.compat_flags,
        )
        context = ReplicaInstanceContext(self, self.ordering_instance_id)
        return PBFTInstance(inst_config, context, propose_timeout=self.config.propose_timeout)

    @property
    def sequencer_id(self) -> int:
        """The replica leading the ordering instance in its current view."""
        return self.instances[self.ordering_instance_id].leader

    # ---------------------------------------------------------------- pacing
    def paced_instance_ids(self) -> List[int]:
        return [i for i in self.instances.keys() if i != self.ordering_instance_id]

    def ordering_interval(self) -> float:
        """How often the sequencer cuts an ordering batch.

        Chosen so that a handful of blocks are sequenced per decision at the
        configured total block rate, keeping the added ordering latency small
        relative to consensus latency.
        """
        return max(0.05, 4.0 / self.config.total_block_rate)

    def start(self) -> None:
        super().start()
        if self.sequencer_id == self.node_id:
            self.set_timer("dqbft-ordering", self.ordering_interval(), self._ordering_tick)

    def _ordering_tick(self) -> None:
        if self.crashed:
            return
        instance = self.instances[self.ordering_instance_id]
        if instance.leader != self.node_id:
            return
        if self._pending_decisions and instance.ready_to_propose():
            batch = Batch(txs=tuple(self._pending_decisions))
            self._pending_decisions = []
            instance.propose(batch, self.now())
        self.set_timer("dqbft-ordering", self.ordering_interval(), self._ordering_tick)

    # ------------------------------------------------------------ commit path
    def on_partial_commit(self, block: Block) -> None:
        if block.instance == self.ordering_instance_id:
            self._on_ordering_block(block)
            return
        self.metrics.record_partial_commit()
        if self.sequencer_id == self.node_id:
            self._pending_decisions.append(block.block_id)
        newly = self.orderer.add_partially_committed(block, self.now())
        if newly:
            self.metrics.record_confirmations(newly)
            self.on_confirmations(newly)

    def _on_ordering_block(self, block: Block) -> None:
        """An ordering-instance block commits: apply its sequencing decisions."""
        assert isinstance(self.orderer, DQBFTOrderer)
        newly: List[ConfirmedBlock] = []
        for block_id in block.txs:
            newly.extend(self.orderer.add_sequencing_decision(block_id, self.now()))
        if newly:
            self.metrics.record_confirmations(newly)
            self.on_confirmations(newly)


class DQBFTSystem(MultiBFTSystem):
    replica_class = DQBFTReplica
