"""End-to-end Multi-BFT systems running on the discrete-event simulator.

Each system hosts ``m`` consensus instances per replica, a global ordering
layer, workload injection, fault/straggler injection, and metric collection.
Available protocols (see :mod:`repro.protocols.registry`):

* ``ladon-pbft``, ``ladon-opt``, ``ladon-hotstuff`` — the paper's systems;
* ``iss-pbft``, ``iss-hotstuff`` — ISS with pre-determined ordering;
* ``mir``, ``rcc`` — Mir and RCC (pre-determined ordering variants);
* ``dqbft`` — DQBFT with a centralised ordering instance.
"""

from repro.protocols.base import SystemConfig, MultiBFTSystem, MultiBFTReplica, SystemResult
from repro.protocols.registry import build_system, available_protocols

__all__ = [
    "SystemConfig",
    "MultiBFTSystem",
    "MultiBFTReplica",
    "SystemResult",
    "build_system",
    "available_protocols",
]
