"""Violation artifacts: serialized, replayable repros of fuzzer findings.

An artifact pins everything needed to re-run one violating execution and
check the replay is *bit-exact*:

* the experiment **cell** (protocol, n, duration, compat flags, ...);
* the **perturbation** spec in decision-replay form (the effective delta per
  delivery, stored sparse);
* the **expected** outcome: audit verdict, violation kinds, confirmed-block
  count, and the canonical sha256 digest of the full schedule trace;
* the trace **skeleton** — every non-delivery event (confirmations,
  cancellations, fault timeline).  Deliveries dominate a trace by orders of
  magnitude, so artifacts stay small while the digest still witnesses every
  delivery; on divergence the skeleton pinpoints the first mismatching
  event for diagnostics.

Artifacts in ``tests/corpus/`` are permanent regression tests: each one is
replayed by ``tests/test_corpus.py`` on every run.
"""

from __future__ import annotations

import json
from dataclasses import fields
from typing import Any, Dict, List, Optional

from repro.bench.config import ExperimentCell
from repro.fuzz.perturb import PerturbationSpec
from repro.sim.trace import TraceEvent, trace_digest, trace_from_jsonable, trace_to_jsonable

#: bump on incompatible artifact layout changes; readers reject other versions
FORMAT = 1


# ----------------------------------------------------------------- outcome
def outcome_of(result: Any, trace_events: List[TraceEvent]) -> Dict[str, Any]:
    """The pinned outcome of one traced run (the replay comparison target)."""
    audit = result.audit
    kinds = sorted({violation.kind for violation in audit.violations})
    if audit.stalled_instances:
        kinds.append("stalled")
    return {
        "safety_ok": audit.safety_ok,
        "live": audit.live,
        "violation_kinds": kinds,
        "stalled_instances": list(audit.stalled_instances),
        "confirmed": len(result.confirmed),
        "trace_digest": trace_digest(trace_events),
    }


def is_violation(outcome: Dict[str, Any]) -> bool:
    """Does this outcome trip the oracle (safety or liveness)?"""
    return bool(outcome["violation_kinds"])


# ------------------------------------------------------------ cell (de)ser
def cell_to_jsonable(cell: ExperimentCell) -> Dict[str, Any]:
    data: Dict[str, Any] = {}
    for f in fields(cell):
        value = getattr(cell, f.name)
        if f.name == "perturbation":
            value = value.as_dict() if value is not None else None
        elif f.name == "compat_flags":
            value = list(value)
        data[f.name] = value
    return data


def cell_from_jsonable(data: Dict[str, Any]) -> ExperimentCell:
    kwargs = dict(data)
    if kwargs.get("perturbation") is not None:
        kwargs["perturbation"] = PerturbationSpec.from_dict(kwargs["perturbation"])
    kwargs["compat_flags"] = tuple(kwargs.get("compat_flags") or ())
    return ExperimentCell(**kwargs)


# ----------------------------------------------------------- artifact body
def make_artifact(
    cell: ExperimentCell,
    outcome: Dict[str, Any],
    trace_events: List[TraceEvent],
    *,
    note: str = "",
) -> Dict[str, Any]:
    """Build the serializable artifact for one violating run."""
    skeleton = [event for event in trace_events if event.category != "deliver"]
    return {
        "format": FORMAT,
        "note": note,
        "cell": cell_to_jsonable(cell),
        "expected": outcome,
        "skeleton": trace_to_jsonable(skeleton),
    }


def artifact_cell(artifact: Dict[str, Any]) -> ExperimentCell:
    """The experiment cell an artifact replays."""
    if artifact.get("format") != FORMAT:
        raise ValueError(
            f"unsupported artifact format {artifact.get('format')!r} "
            f"(this build reads format {FORMAT})"
        )
    return cell_from_jsonable(artifact["cell"])


def artifact_skeleton(artifact: Dict[str, Any]) -> List[TraceEvent]:
    return trace_from_jsonable(artifact["skeleton"])


# ----------------------------------------------------------------- file IO
def write_artifact(path: str, artifact: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=1, sort_keys=True)
        fh.write("\n")


def read_artifact(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
