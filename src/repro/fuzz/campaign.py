"""Schedule-space fuzzing campaigns.

A campaign sweeps perturbation seeds over one experiment cell: phase 1 fans
the seeds out across worker processes on the sweep harness (cheap, untraced
runs judged by the safety/liveness auditor's metrics row); when a seed
violates, phase 2 reproduces it in-process with tracing on, converts the
run into decision-replay form (the effective delta of every delivery),
delta-debugs it down to a minimal repro, and serializes the result as a
replayable artifact.

Determinism: seeds derive from ``derive_seed(base_seed, "perturbation", i)``
— the campaign's findings depend only on its configuration, never on worker
scheduling.  The campaign itself never reads a wall clock (DET-001); time
budgets are injected by the CLI as a ``should_stop`` callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.config import ExperimentCell
from repro.bench.sweep import SweepRunner, derive_seed
from repro.fuzz.artifact import is_violation, make_artifact, outcome_of
from repro.fuzz.perturb import PerturbationSpec
from repro.fuzz.replay import run_cell_traced
from repro.fuzz.shrink import ShrinkResult, shrink


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzzing campaign: a cell template plus the perturbation sweep."""

    protocol: str = "ladon-pbft"
    n: int = 4
    duration: float = 8.0
    batch_size: int = 64
    seed: int = 0
    seeds: int = 16
    base_seed: int = 0
    max_delay: float = 1.2
    probability: float = 0.08
    #: burst cutoff: perturb only deliveries scheduled before this virtual
    #: time (None = duration / 2), leaving the tail unperturbed so honest
    #: runs re-stabilise before the auditor's end-of-run stall window
    perturb_until: Optional[float] = None
    view_change_timeout: Optional[float] = 1.0
    #: follower-side escalation: expect a proposal within this window or
    #: start a view change (the crash-experiment mechanism).  Without it a
    #: lone view-change voter can deadlock an instance — every liveness
    #: finding would be that one wedge instead of the interesting ones.
    propose_timeout: Optional[float] = 2.0
    scenario: Optional[str] = None
    adversary: Optional[str] = None
    compat_flags: Tuple[str, ...] = ()

    def base_cell(self) -> ExperimentCell:
        """The unperturbed cell every seed's run is a schedule variant of."""
        return ExperimentCell(
            protocol=self.protocol,
            n=self.n,
            duration=self.duration,
            batch_size=self.batch_size,
            seed=self.seed,
            scenario=self.scenario,
            adversary=self.adversary,
            compat_flags=self.compat_flags,
            view_change_timeout=self.view_change_timeout,
            propose_timeout=self.propose_timeout,
        )

    def spec_for(self, index: int) -> PerturbationSpec:
        until = self.perturb_until if self.perturb_until is not None else self.duration / 2.0
        return PerturbationSpec(
            max_delay=self.max_delay,
            probability=self.probability,
            until=until,
            seed=derive_seed(self.base_seed, "perturbation", index),
        )

    def cells(self) -> List[ExperimentCell]:
        base = self.base_cell()
        return [
            replace(base, perturbation=self.spec_for(index))
            for index in range(self.seeds)
        ]


@dataclass
class Finding:
    """One violating seed, optionally reproduced/shrunk into an artifact."""

    cell: ExperimentCell
    seed_index: int
    row: Dict[str, Any]
    artifact: Optional[Dict[str, Any]] = None
    shrink_result: Optional[ShrinkResult] = None


@dataclass
class CampaignReport:
    """Everything one campaign produced."""

    config: FuzzConfig
    rows: List[Dict[str, Any]] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    seeds_run: int = 0
    stopped_early: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings


def row_violates(row: Dict[str, Any]) -> bool:
    """Does a sweep metrics row report a safety or liveness violation?

    ``RunMetrics.as_dict`` flattens the auditor's verdict into the row as
    ``safety_violations`` / ``stalled_instances`` counts.
    """
    return bool(
        row.get("safety_violations", 0.0) or row.get("stalled_instances", 0.0)
    )


def cell_violates(cell: ExperimentCell) -> bool:
    """Shrink predicate: does re-running ``cell`` still trip the oracle?

    Untraced on purpose — the predicate only needs the audit verdict, and
    shrinking runs it dozens of times; the winning candidate is re-run
    traced once afterwards to pin the digest.
    """
    from repro.bench.runner import run_cell

    return row_violates(run_cell(cell).as_dict())


def cell_breaks_safety(cell: ExperimentCell) -> bool:
    """Shrink predicate for safety findings: still a *safety* violation?"""
    from repro.bench.runner import run_cell

    return run_cell(cell).as_dict().get("safety_violations", 0.0) > 0


def predicate_for(outcome: Dict[str, Any]) -> Callable[[ExperimentCell], bool]:
    """The class-preserving shrink predicate for an outcome.

    A safety finding must stay a safety finding while shrinking — the
    generic "any violation" predicate would happily trade a conflicting
    commit for a mere stall, minimizing away the interesting bug.
    """
    return cell_violates if outcome["safety_ok"] else cell_breaks_safety


def reproduce(cell: ExperimentCell) -> Tuple[ExperimentCell, Dict[str, Any], Any]:
    """Re-run a violating cell traced; return it in decision-replay form.

    Returns ``(replay_cell, outcome, system)`` where ``replay_cell`` pins
    the effective decision vector (so shrinking and replay are independent
    of the RNG) and ``outcome`` is the pinned oracle verdict.
    """
    system, result = run_cell_traced(cell)
    outcome = outcome_of(result, system.trace.events)
    spec = cell.perturbation
    if spec is not None and spec.decisions is None and system.perturbation is not None:
        spec = replace(spec, decisions=tuple(system.perturbation.applied))
        cell = replace(cell, perturbation=spec)
    return cell, outcome, system


def run_campaign(
    config: FuzzConfig,
    *,
    runner: Optional[SweepRunner] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    stop_on_violation: bool = True,
    do_shrink: bool = True,
    shrink_max_tests: int = 120,
    batch: int = 4,
    log: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Run one campaign; returns the report (violations, rows, artifacts).

    ``should_stop`` is polled between seed batches (the CLI injects its
    wall-clock budget there; the campaign itself stays wall-clock-free).
    """
    runner = runner if runner is not None else SweepRunner(workers=0)
    emit = log if log is not None else (lambda message: None)
    report = CampaignReport(config=config)
    cells = config.cells()

    for start in range(0, len(cells), max(1, batch)):
        if should_stop is not None and should_stop():
            report.stopped_early = True
            emit(f"budget exhausted after {report.seeds_run} seeds")
            break
        chunk = cells[start : start + max(1, batch)]
        rows = runner.run(chunk)
        report.rows.extend(rows)
        report.seeds_run += len(chunk)
        for offset, (cell, row) in enumerate(zip(chunk, rows)):
            if not row_violates(row):
                continue
            seed_index = start + offset
            emit(f"seed {seed_index}: violation (reproducing traced)")
            finding = Finding(cell=cell, seed_index=seed_index, row=row)
            replay_cell, outcome, _system = reproduce(cell)
            if not is_violation(outcome):
                # The untraced sweep row and the traced rerun disagree —
                # that would itself be a determinism bug; surface loudly.
                raise AssertionError(
                    f"seed {seed_index} violated in the sweep but not when "
                    f"reproduced traced: {row} vs {outcome}"
                )
            if do_shrink:
                shrink_result = shrink(
                    replay_cell, predicate_for(outcome), max_tests=shrink_max_tests
                )
                finding.shrink_result = shrink_result
                replay_cell = shrink_result.cell
                emit(
                    f"seed {seed_index}: shrunk to "
                    f"{shrink_result.nonzero_decisions} decisions in "
                    f"{shrink_result.tests} tests"
                )
                # Re-pin the outcome/trace of the minimized repro.
                system, result = run_cell_traced(replay_cell)
                outcome = outcome_of(result, system.trace.events)
                trace_events = system.trace.events
            else:
                _cell2, outcome, system = reproduce(replay_cell)
                trace_events = system.trace.events
            finding.artifact = make_artifact(
                replay_cell,
                outcome,
                trace_events,
                note=(
                    f"found by fuzz campaign (base_seed={config.base_seed}, "
                    f"perturbation seed index {seed_index})"
                ),
            )
            report.findings.append(finding)
            if stop_on_violation:
                return report
    return report
