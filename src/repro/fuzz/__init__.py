"""Schedule-space fuzzing: perturb DES delivery schedules, audit, replay, shrink.

The fuzzer searches the space of message-delivery schedules around a cell's
nominal execution: a :class:`~repro.fuzz.perturb.SchedulePerturbation` sits
between the transport's fan-out and the event heap and delays individual
deliveries by bounded, seeded amounts, so every perturbed run is still a
valid execution (arrivals only move later, never before their send).  The
safety/liveness auditor judges every run; violations are captured as
replayable artifacts and delta-debugged down to minimal repros that live in
``tests/corpus/``.

Import surface: this package root stays dependency-light (no bench/harness
imports) so the sans-I/O protocol layer can lazily pull
:mod:`repro.fuzz.perturb` without dragging in multiprocessing.  The campaign
driver lives in :mod:`repro.fuzz.campaign`; the CLI in
:mod:`repro.bench.fuzz_cli` (``python -m repro.bench fuzz ...``).
"""

from repro.fuzz.perturb import PerturbationSpec, SchedulePerturbation

__all__ = ["PerturbationSpec", "SchedulePerturbation"]
