"""Bounded, seeded perturbation of the delivery schedule.

A :class:`SchedulePerturbation` wraps the transport's delivery scheduling
(:meth:`repro.sim.network.Network.set_delivery_perturbation`): every
delivery's arrival time may be pushed *later* by a delta in
``[0, max_delay]``.  Delays-only keeps perturbed runs valid executions —
an arrival never moves before its departure, so causality and the
scheduler's no-past invariant hold by construction.

Two modes share one code path:

* **generation** (``decisions is None``) — deltas are drawn from a private
  ``random.Random(seed)``, one gate draw plus one magnitude draw per
  delivery, so identical ``(seed, cell)`` always yields the identical
  perturbation sequence;
* **replay/shrink** (``decisions`` set) — deltas come from the supplied
  vector by delivery index (missing indices mean 0.0), which is how the
  shrinker zeroes individual perturbation decisions while holding the rest
  of the schedule fixed.

With ``preserve_fifo`` (the default), deliveries of one ``(sender,
receiver)`` pair that the base schedule kept in FIFO order stay in FIFO
order after perturbation: a delivery's perturbed time is clamped up to the
pair's previous perturbed time.  The clamp never leaves the envelope —
inductively ``perturbed <= base + max_delay`` for the predecessor, and a
successor with ``base' >= base`` therefore has ``base' + max_delay >=
perturbed`` — so every perturbed arrival ``a`` satisfies
``base <= a <= base + max_delay``.  Pairs the *base* schedule already
reordered (jittered latency models do) are left unclamped: the transport
never guaranteed their order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class PerturbationSpec:
    """Declarative description of one perturbation stream (cache/artifact key).

    ``decisions`` switches replay mode on: entry ``i`` is the delay applied
    to the ``i``-th scheduled delivery (missing entries are 0.0) and the RNG
    is never consumed.
    """

    max_delay: float = 0.1
    probability: float = 1.0
    preserve_fifo: bool = True
    seed: int = 0
    #: perturb only deliveries whose *base* arrival is before this virtual
    #: time (None = the whole run).  A bounded burst lets honest executions
    #: recover before the auditor's end-of-run stall window, so liveness
    #: findings implicate the protocol, not the fuzzer's own load.
    until: Optional[float] = None
    decisions: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.decisions is not None:
            for index, delta in enumerate(self.decisions):
                if delta < 0 or delta > self.max_delay:
                    raise ValueError(
                        f"decision {index} ({delta}) outside [0, {self.max_delay}]"
                    )

    # ------------------------------------------------------- serialization
    def as_dict(self) -> dict:
        """JSON-ready form; ``decisions`` is stored sparse (mostly zeros)."""
        out = {
            "max_delay": self.max_delay,
            "probability": self.probability,
            "preserve_fifo": self.preserve_fifo,
            "seed": self.seed,
            "until": self.until,
            "decisions": None,
        }
        if self.decisions is not None:
            out["decisions"] = {
                "len": len(self.decisions),
                "nonzero": [
                    [index, delta]
                    for index, delta in enumerate(self.decisions)
                    if delta
                ],
            }
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "PerturbationSpec":
        decisions = data.get("decisions")
        dense: Optional[Tuple[float, ...]] = None
        if decisions is not None:
            values = [0.0] * decisions["len"]
            for index, delta in decisions["nonzero"]:
                values[index] = delta
            dense = tuple(values)
        return cls(
            max_delay=data["max_delay"],
            probability=data["probability"],
            preserve_fifo=data["preserve_fifo"],
            seed=data["seed"],
            until=data.get("until"),
            decisions=dense,
        )


class SchedulePerturbation:
    """Stateful applicator of a :class:`PerturbationSpec` to one run.

    The transport calls :meth:`perturb` once per scheduled delivery, in
    scheduling order; ``applied`` accumulates the *effective* delta of each
    delivery (post-FIFO-clamp), which is exactly the decision vector that
    replays this run when fed back as ``spec.decisions``.
    """

    def __init__(self, spec: PerturbationSpec) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._index = 0
        #: effective delta per delivery, in scheduling order
        self.applied: List[float] = []
        #: per-(sender, receiver) FIFO frontier: (highest base, its perturbed time)
        self._fifo_high: Dict[Tuple[int, int], Tuple[float, float]] = {}

    def perturb(self, arrival: float, sender: int, receiver: int) -> float:
        """The perturbed arrival time for the next delivery in schedule order."""
        spec = self.spec
        decisions = spec.decisions
        index = self._index
        self._index = index + 1
        if decisions is not None:
            delta = decisions[index] if index < len(decisions) else 0.0
        elif spec.until is not None and arrival >= spec.until:
            delta = 0.0  # outside the burst window: no draw, no delay
        elif spec.probability >= 1.0 or self._rng.random() < spec.probability:
            delta = self._rng.random() * spec.max_delay
        else:
            delta = 0.0
        time = arrival + delta
        if spec.preserve_fifo:
            key = (sender, receiver)
            high = self._fifo_high.get(key)
            if high is None or arrival >= high[0]:
                # In-order in the base schedule: stay in order (clamp up to
                # the predecessor's perturbed time; see module docstring for
                # why this cannot exceed arrival + max_delay).
                if high is not None and time < high[1]:
                    time = high[1]
                self._fifo_high[key] = (arrival, time)
            # else: the base schedule itself reordered this pair — no FIFO
            # guarantee existed, so no clamp (and the frontier stays put).
        self.applied.append(time - arrival)
        return time

    @property
    def deliveries(self) -> int:
        """How many deliveries have been perturbed so far."""
        return self._index
