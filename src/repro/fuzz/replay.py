"""Deterministic replay of traced runs and violation artifacts.

Replay is *re-execution*: the cell is rebuilt and re-run with tracing on,
and the fresh trace is compared against the artifact's pinned expectations.
Bit-exactness means the canonical trace digests match — same deliveries,
same cancellations, same fault actions, same confirmations, at the same
virtual times, in the same order.  On divergence the artifact's skeleton
(non-delivery events) localizes the first mismatching event for a usable
diagnostic; a digest-only mismatch means the divergence is inside the
delivery stream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.config import ExperimentCell
from repro.fuzz.artifact import (
    artifact_cell,
    artifact_skeleton,
    is_violation,
    outcome_of,
)
from repro.sim.trace import TraceEvent, event_key


def run_cell_traced(cell: ExperimentCell) -> Tuple[Any, Any]:
    """Run ``cell`` on the DES engine with tracing forced on.

    Returns ``(system, result)`` — the system exposes ``.trace`` (the
    schedule witness) and ``.perturbation`` (the applied decision vector).
    """
    from repro.protocols.registry import build_system

    if cell.engine != "des":
        raise ValueError(f"traced runs need the DES engine; got {cell.engine!r}")
    config = replace(cell.to_system_config(), trace=True)
    system = build_system(config)
    result = system.run()
    return system, result


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying one artifact."""

    ok: bool
    outcome: Dict[str, Any]
    expected: Dict[str, Any]
    divergence: str = ""

    def summary(self) -> str:
        if self.ok:
            kinds = ",".join(self.outcome["violation_kinds"]) or "none"
            return f"replay OK (bit-exact; violations: {kinds})"
        return f"replay DIVERGED: {self.divergence}"


def _first_skeleton_divergence(
    expected: List[TraceEvent], actual: List[TraceEvent]
) -> str:
    """Human-readable location of the first skeleton mismatch ('' if none)."""
    for index, (want, got) in enumerate(zip(expected, actual)):
        if event_key(want) != event_key(got):
            return (
                f"diverged at skeleton event #{index}: "
                f"expected {event_key(want)}, got {event_key(got)}"
            )
    if len(expected) != len(actual):
        return (
            f"skeleton length mismatch: expected {len(expected)} events, "
            f"got {len(actual)} (first {min(len(expected), len(actual))} match)"
        )
    return ""


def replay_artifact(artifact: Dict[str, Any]) -> ReplayReport:
    """Re-execute an artifact's cell and compare against its expectations."""
    cell = artifact_cell(artifact)
    system, result = run_cell_traced(cell)
    outcome = outcome_of(result, system.trace.events)
    expected = artifact["expected"]
    if outcome == expected:
        return ReplayReport(ok=True, outcome=outcome, expected=expected)

    # Diagnose: prefer an event-level location over a bare digest mismatch.
    divergence = ""
    if outcome["trace_digest"] != expected["trace_digest"]:
        skeleton_expected = artifact_skeleton(artifact)
        skeleton_actual = [
            event for event in system.trace.events if event.category != "deliver"
        ]
        divergence = _first_skeleton_divergence(skeleton_expected, skeleton_actual)
        if not divergence:
            divergence = (
                "trace digest mismatch inside the delivery stream "
                f"(expected {expected['trace_digest'][:16]}..., "
                f"got {outcome['trace_digest'][:16]}...)"
            )
    else:
        mismatched = sorted(
            key
            for key in set(expected) | set(outcome)
            if expected.get(key) != outcome.get(key)
        )
        divergence = "verdict mismatch on " + ", ".join(
            f"{key} (expected {expected.get(key)!r}, got {outcome.get(key)!r})"
            for key in mismatched
        )
    return ReplayReport(ok=False, outcome=outcome, expected=expected, divergence=divergence)
