"""Delta-debugging shrinker for schedule-space violations.

Given a violating decision vector (the effective per-delivery delays of a
reproduced run) and a predicate "does this still violate?", the shrinker
minimizes along two axes:

1. **dimension reduction** — cheap structural candidates first: drop the
   adversary, drop the scenario, halve the run duration.  Each accepted
   reduction typically removes thousands of decisions at once.
2. **ddmin over decisions** — classic delta debugging (Zeller's ddmin) on
   the *nonzero* decision indices: try zeroing complements of progressively
   finer chunks, keeping any candidate that still violates.  The result is
   1-minimal up to chunk granularity: no single remaining chunk of the
   final granularity can be zeroed without losing the violation.

The shrinker is **monotone** (a candidate is only accepted if it still
violates, and candidates only ever zero decisions / shrink dimensions — the
current repro never grows) and **terminating** (ddmin's granularity doubles
until it exceeds the live set, and ``max_tests`` bounds the total number of
predicate evaluations).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.bench.config import ExperimentCell
from repro.fuzz.perturb import PerturbationSpec

#: predicate(cell) -> True when the cell still reproduces the violation
Predicate = Callable[[ExperimentCell], bool]


@dataclass
class ShrinkResult:
    """Outcome of one shrink session."""

    cell: ExperimentCell
    tests: int = 0
    accepted: int = 0

    @property
    def decisions(self) -> Tuple[float, ...]:
        spec = self.cell.perturbation
        return spec.decisions if spec is not None and spec.decisions else ()

    @property
    def nonzero_decisions(self) -> int:
        return sum(1 for delta in self.decisions if delta)


def _with_decisions(cell: ExperimentCell, decisions: Tuple[float, ...]) -> ExperimentCell:
    spec = cell.perturbation
    assert spec is not None
    return replace(cell, perturbation=replace(spec, decisions=decisions))


def _zeroed(
    decisions: Tuple[float, ...], keep: Sequence[int]
) -> Tuple[float, ...]:
    """The vector with every nonzero index outside ``keep`` zeroed."""
    keep_set = set(keep)
    return tuple(
        delta if (not delta or index in keep_set) else 0.0
        for index, delta in enumerate(decisions)
    )


def shrink(
    cell: ExperimentCell,
    predicate: Predicate,
    *,
    max_tests: int = 200,
    min_duration: float = 2.0,
) -> ShrinkResult:
    """Minimize ``cell`` (which must satisfy ``predicate``) via ddmin.

    ``cell.perturbation.decisions`` must be set (decision-replay form); use
    the ``applied`` vector of a reproduced run.  ``max_tests`` bounds
    predicate evaluations across both shrink axes; ``min_duration`` floors
    the duration halving.
    """
    spec = cell.perturbation
    if spec is None or spec.decisions is None:
        raise ValueError("shrink needs a cell in decision-replay form")
    result = ShrinkResult(cell=cell)

    def check(candidate: ExperimentCell) -> bool:
        result.tests += 1
        ok = predicate(candidate)
        if ok:
            result.accepted += 1
            result.cell = candidate
        return ok

    # ---- axis 1: dimension reductions (cheap, huge wins when accepted)
    def dimension_candidates(current: ExperimentCell) -> List[ExperimentCell]:
        candidates: List[ExperimentCell] = []
        if current.adversary is not None:
            candidates.append(replace(current, adversary=None))
        if current.scenario is not None:
            candidates.append(replace(current, scenario=None))
        if current.duration / 2.0 >= min_duration:
            candidates.append(replace(current, duration=current.duration / 2.0))
        return candidates

    progress = True
    while progress and result.tests < max_tests:
        progress = False
        for candidate in dimension_candidates(result.cell):
            if result.tests >= max_tests:
                break
            if check(candidate):
                progress = True
                break  # durations can halve repeatedly: re-derive candidates

    # ---- axis 2: ddmin over the nonzero decision indices
    decisions = result.cell.perturbation.decisions or ()
    live: List[int] = [index for index, delta in enumerate(decisions) if delta]
    # All-zero first: if the violation survives with no perturbation at all,
    # it is schedule-independent and the minimal repro carries no decisions.
    if live and result.tests < max_tests:
        if check(_with_decisions(result.cell, _zeroed(decisions, ()))):
            live = []
    granularity = 2
    while len(live) >= 2 and result.tests < max_tests:
        chunk_size = max(1, len(live) // granularity)
        chunks: List[List[int]] = [
            live[start : start + chunk_size]
            for start in range(0, len(live), chunk_size)
        ]
        reduced = False
        # Try each chunk alone (reduce to subset) ...
        for chunk in chunks:
            if len(chunk) == len(live) or result.tests >= max_tests:
                continue
            if check(_with_decisions(result.cell, _zeroed(decisions, chunk))):
                live = list(chunk)
                granularity = 2
                reduced = True
                break
        if not reduced:
            # ... then each complement (drop one chunk).
            for drop_index, chunk in enumerate(chunks):
                if len(chunks) <= 1 or result.tests >= max_tests:
                    continue
                complement = [
                    index
                    for other_index, other in enumerate(chunks)
                    if other_index != drop_index
                    for index in other
                ]
                if check(_with_decisions(result.cell, _zeroed(decisions, complement))):
                    live = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if chunk_size <= 1:
                break  # 1-minimal at single-decision granularity
            granularity = min(granularity * 2, len(live))
    return result
