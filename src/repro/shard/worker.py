"""The shard worker: one process, one DES engine, one slice of the replicas.

Each worker builds the *same* :class:`~repro.protocols.base.SystemConfig`
the hub holds, but constructs only its shard's replicas on a
:class:`~repro.shard.transport.ShardNetwork`, then obeys the hub's barrier
protocol over a duplex pipe.  All frames are binary
(``send_bytes``/``recv_bytes`` with payloads encoded by
:mod:`repro.shard.ipc`); the control vocabulary is:

========== ======================================================== =========
frame      payload                                                  direction
========== ======================================================== =========
``run``    ``(target, inclusive, in_frames)`` — deliver the routed  hub->wkr
           cross-shard frames, then run the window up to ``target``
           (exclusive unless ``inclusive``, which only the final
           window and its drain rounds use)
``flush``  ``(out_frames, min_outgoing, next_event, events)`` —     wkr->hub
           the window's outbox frames per destination shard, the
           earliest outgoing arrival, the local heap head, and the
           cumulative event count
``collect`` request the :class:`ShardResult`                        hub->wkr
``result`` the pickled :class:`ShardResult`                         wkr->hub
``stop``   exit the worker loop                                     hub->wkr
``error``  a formatted traceback (any phase)                        wkr->hub
========== ======================================================== =========

The worker never reads the wall clock and draws randomness only from its
seeded simulator (seed derived per shard by
:func:`repro.shard.ipc.derive_shard_seed`), so a (seed, shard count) pair
reproduces bit-identically.
"""

from __future__ import annotations

import math
import resource
import sys
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.shard.ipc import decode_batch, decode_frame, derive_shard_seed, encode_frame
from repro.shard.partition import ShardPlan
from repro.shard.transport import ShardNetwork

_INFINITY = float("inf")


@dataclass
class ObserverBundle:
    """The observer replica's full metrics state (one shard carries it)."""

    collector: Any  # MetricsCollector
    confirmed: Tuple[Any, ...]  # Tuple[ConfirmedBlock, ...]
    epoch_log: List[Tuple[float, int]]


@dataclass
class ShardResult:
    """Everything the hub needs from one finished worker."""

    shard_id: int
    events_processed: int
    peak_rss_bytes: int
    net_stats: Any  # NetworkStats
    resources: Dict[int, Any]  # replica -> ResourceUsage
    commit_logs: Dict[int, Dict[int, List[Tuple[int, str, float]]]]
    confirmed_fps: Dict[int, List[Tuple[int, int, int, int, str]]]
    view_change_log: List[Tuple[float, int, int]]
    crash_log: List[Tuple[float, int, str]]
    event_log: List[Tuple[float, str, str]]
    adversary_stats: Optional[Dict[str, int]]
    observer: Optional[ObserverBundle]
    #: observed lookahead-safety margin: min(arrival - horizon) over every
    #: remote delivery this shard accepted (inf if none arrived)
    min_margin: float = _INFINITY
    windows: int = 0


def _worker_peak_rss_bytes() -> int:
    """This worker's own peak RSS in bytes (ru_maxrss is KiB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return rss
    return rss * 1024


def _build_system(config, plan: ShardPlan, shard_id: int):
    """Construct this shard's partial system on a ShardWorkerRuntime."""
    from repro.protocols.registry import resolve_protocol, system_class
    from repro.runtime.sharded import ShardWorkerRuntime

    runtime = ShardWorkerRuntime(
        seed=derive_shard_seed(config.seed, shard_id),
        latency=config.latency_model(),
        config=config.network_config(),
        plan=plan,
        shard_id=shard_id,
    )
    cls = system_class(resolve_protocol(config.protocol))
    system = cls(config, runtime=runtime, local_replicas=plan.members(shard_id))
    return system, runtime


def collect_shard_result(
    system, network: ShardNetwork, shard_id: int, windows: int
) -> ShardResult:
    """Gather the worker-side state the hub merges into a SystemResult."""
    commit_logs: Dict[int, Dict[int, List[Tuple[int, str, float]]]] = {}
    confirmed_fps: Dict[int, List[Tuple[int, int, int, int, str]]] = {}
    view_changes: List[Tuple[float, int, int]] = []
    for replica_id in sorted(system.replicas):
        replica = system.replicas[replica_id]
        by_instance: Dict[int, List[Tuple[int, str, float]]] = {}
        for instance_id, instance in replica.instances.items():
            log = getattr(instance, "commit_log", None)
            if log is None:
                log = [
                    (block.round, block.payload_digest, block.committed_at or 0.0)
                    for block in getattr(instance, "delivered_blocks", ())
                ]
            by_instance[instance_id] = list(log)
        commit_logs[replica_id] = by_instance
        confirmed_fps[replica_id] = replica.orderer.confirmed_fingerprints()
        view_changes.extend(replica.view_change_log)

    observer: Optional[ObserverBundle] = None
    observer_id = system._observer_id
    if observer_id in system.replicas:
        obs = system.replicas[observer_id]
        observer = ObserverBundle(
            collector=obs.metrics,
            confirmed=obs.orderer.confirmed,
            epoch_log=(
                list(obs.pacemaker.advancement_log)
                if obs.pacemaker is not None
                else []
            ),
        )

    injector = system.fault_injector
    return ShardResult(
        shard_id=shard_id,
        events_processed=system.runtime.events_processed,
        peak_rss_bytes=_worker_peak_rss_bytes(),
        net_stats=network.stats,
        resources=dict(system.resources.per_replica()),
        commit_logs=commit_logs,
        confirmed_fps=confirmed_fps,
        view_change_log=view_changes,
        crash_log=list(injector.crash_log),
        event_log=list(injector.event_log),
        adversary_stats=(
            injector.adversary_stats() if injector.interceptors else None
        ),
        observer=observer,
        min_margin=network.min_margin,
        windows=windows,
    )


def worker_entry(conn, config, plan: ShardPlan, shard_id: int) -> None:
    """Process entry point: build the shard, then serve the barrier loop."""
    try:
        system, runtime = _build_system(config, plan, shard_id)
        network: ShardNetwork = runtime.network
        simulator = runtime.simulator
        system.start()
        windows = 0
        while True:
            frame = decode_frame(conn.recv_bytes())
            kind = frame[0]
            if kind == "run":
                _, target, inclusive, in_frames = frame
                if in_frames:
                    entries: List[Any] = []
                    for data in in_frames:
                        entries.extend(decode_batch(data))
                    # Stable sort on arrival over the deterministic
                    # source-shard concatenation order -> reproducible
                    # sequence numbers for equal timestamps.
                    entries.sort(key=_arrival)
                    network.enqueue_remote(entries)
                until = target if inclusive else math.nextafter(target, 0.0)
                simulator.run(until=until)
                network.set_horizon(target)
                out_frames, min_outgoing = network.drain_outboxes()
                heap = simulator.queue._heap
                next_event = heap[0][0] if heap else _INFINITY
                windows += 1
                conn.send_bytes(
                    encode_frame(
                        (
                            "flush",
                            out_frames,
                            min_outgoing,
                            next_event,
                            simulator.events_processed,
                        )
                    )
                )
            elif kind == "collect":
                result = collect_shard_result(system, network, shard_id, windows)
                conn.send_bytes(encode_frame(("result", result)))
            elif kind == "stop":
                return
            else:  # pragma: no cover - protocol guard
                raise ValueError(f"unknown hub frame {kind!r}")
    except Exception:  # pragma: no cover - exercised via hub error handling
        try:
            conn.send_bytes(encode_frame(("error", traceback.format_exc())))
        except (BrokenPipeError, OSError):
            pass
        raise


def _arrival(entry: Tuple[float, int, int, Any]) -> float:
    return entry[0]
