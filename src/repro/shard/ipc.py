"""Binary framing for the cross-shard IPC channel.

Every payload crossing a process boundary goes through this module — the
single place where pickling is allowed (enforced by the SHARD-002
staticcheck rule).  Two payload kinds exist:

* **message batches** — lists of ``(arrival, sender, receiver, message)``
  delivery entries flushed from a shard's outbox at a barrier.  Messages are
  the PR 5 frozen-slots flyweights, so one batch pickles into a compact
  frame and pickle's memo table dedupes payload objects (a multicast's
  shared :class:`~repro.workload.transactions.Batch` is serialized once per
  frame, not once per receiver).  The hub routes these frames as **opaque
  bytes** — only the destination shard unpickles them.
* **control frames** — the tuples of the hub <-> worker barrier protocol
  (:mod:`repro.shard.worker`).

Framing itself (length prefix) is ``multiprocessing.Connection``'s
``send_bytes``/``recv_bytes``; this module owns the byte payloads.
"""

from __future__ import annotations

import dataclasses
import pickle
from typing import Any, List, Tuple

#: one cross-shard delivery: (arrival time, sender, receiver, message)
RemoteEntry = Tuple[float, int, int, Any]

#: the highest protocol both 3.10 and 3.12 share, and the fastest
_PROTOCOL = pickle.HIGHEST_PROTOCOL


class ShardSyncError(RuntimeError):
    """A violation of the conservative-synchronization contract.

    Raised when a remote message arrives timestamped before the receiving
    shard's executed horizon — by construction impossible while the
    lookahead derivation is sound, so this surfacing means a latency model
    broke its ``min_delay`` promise (or the barrier math regressed).
    """


def derive_shard_seed(seed: int, shard_id: int) -> int:
    """Stable per-shard RNG seed.

    Each worker's simulator gets its own stream so shard-local jitter draws
    are independent (identical streams would correlate link jitter across
    shards).  The derivation is a fixed affine map — no hashing randomness —
    so a (seed, shard count) pair always reproduces bit-identically.
    """
    return seed + 1_000_003 * (shard_id + 1)


def encode_batch(entries: List[RemoteEntry]) -> bytes:
    """Frame one outbox batch for the wire."""
    return pickle.dumps(entries, _PROTOCOL)


def decode_batch(data: bytes) -> List[RemoteEntry]:
    """Decode a frame produced by :func:`encode_batch`."""
    return pickle.loads(data)


def encode_frame(payload: Any) -> bytes:
    """Frame a control payload (hub <-> worker protocol tuples)."""
    return pickle.dumps(payload, _PROTOCOL)


def decode_frame(data: bytes) -> Any:
    """Decode a control frame."""
    return pickle.loads(data)


def check_flyweight(message: Any) -> bool:
    """Whether ``message`` honours the IPC-boundary type contract.

    The contract (SHARD-002): everything crossing the shard boundary is a
    frozen dataclass with ``__slots__`` (the flyweight shape: immutable, no
    ``__dict__``, cheap to pickle).  Used by tests and debug assertions —
    never on the per-message hot path.
    """
    cls = type(message)
    params = getattr(cls, "__dataclass_params__", None)
    if params is None or not params.frozen:
        return False
    # slots=True all the way down means instances carry no __dict__.
    return not hasattr(message, "__dict__")


def validate_entries(entries: List[RemoteEntry]) -> None:
    """Assert every entry's message is a frozen-slots flyweight (test aid)."""
    for arrival, sender, receiver, message in entries:
        if not check_flyweight(message):
            raise TypeError(
                f"non-flyweight payload {type(message).__name__!r} on the "
                f"IPC boundary ({sender}->{receiver} @ {arrival}): messages "
                "crossing shards must be frozen dataclasses with __slots__"
            )
        if not dataclasses.is_dataclass(message):  # pragma: no cover - guard
            raise TypeError(f"{type(message).__name__} is not a dataclass")
