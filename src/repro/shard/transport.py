"""Shard-local transport: the Network with a local/remote fan-out split.

:class:`ShardNetwork` subclasses the single-process
:class:`~repro.sim.network.Network` and keeps its semantics bit-for-bit for
shard-local traffic (same stats order, same uplink serialisation, same RNG
draw per receiver).  The only change: a receiver living on another shard
gets its fully-computed delivery entry ``(arrival, sender, receiver,
message)`` appended to that shard's **outbox** instead of pushed onto the
local event heap.  Outboxes are flushed at every barrier
(:meth:`drain_outboxes`) and delivered into the destination shard's heap
before its next window (:meth:`enqueue_remote`), which checks the
conservative-synchronization invariant: no arrival may predate the
receiving shard's executed horizon.

Sender-side effects (stats, link filter, partition, loss, uplink busy time,
latency draws) all happen on the *sending* shard exactly as they would in
one process, so the cross-shard channel carries finished delivery entries —
the receiving shard never re-rolls RNG for them.
"""

# staticcheck: hot-path
from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple, TYPE_CHECKING

from repro.shard.ipc import RemoteEntry, ShardSyncError, encode_batch
from repro.shard.partition import ShardPlan
from repro.sim.latency import LatencyModel
from repro.sim.network import Network, NetworkConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import Simulator

_INFINITY = float("inf")


class ShardNetwork(Network):
    """The transport of one shard worker."""

    def __init__(
        self,
        simulator: "Simulator",
        latency: Optional[LatencyModel] = None,
        config: Optional[NetworkConfig] = None,
        *,
        plan: ShardPlan,
        shard_id: int,
    ) -> None:
        super().__init__(simulator, latency=latency, config=config)
        self.plan = plan
        self.shard_id = shard_id
        self._shard_of = plan.assignment
        #: receiver -> hosted-here? (dense bool row, hot-path indexed)
        self._local: List[bool] = [owner == shard_id for owner in plan.assignment]
        #: per-destination-shard outboxes of finished delivery entries
        self._outboxes: List[List[RemoteEntry]] = [[] for _ in range(plan.shards)]
        #: executed horizon: every local event strictly before this time has
        #: run; incoming remote arrivals must be >= it (lookahead safety)
        self._horizon = 0.0
        #: smallest (arrival - horizon) seen across all enqueued remote
        #: entries — the run's observed lookahead-safety margin
        self.min_margin = _INFINITY
        #: all replica ids, ascending — the *global* membership.  Protocol
        #: fan-out reads this (and caches per list identity), so it must be
        #: one stable list covering every shard, not just local handlers.
        self._global_nodes: List[int] = list(range(plan.n))

    # ---------------------------------------------------------- introspection
    def registered_nodes(self) -> List[int]:
        """Global membership (stable identity), not just local handlers.

        Registration never changes mid-run (crashes do not unregister), so
        the full-id list is correct on every shard and keeps the replicas'
        fan-out split caches valid.
        """
        return self._global_nodes

    # --------------------------------------------------------------- sending
    def send(self, sender: int, receiver: int, message: Any, size_bytes: int = 0) -> None:
        """One unicast; remote receivers get an outbox entry, not a heap push."""
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size_bytes
        per_node = stats.bytes_per_node
        per_node[sender] = per_node.get(sender, 0) + size_bytes
        per_node = stats.messages_per_node
        per_node[sender] = per_node.get(sender, 0) + 1
        if self._link_filter is not None and not self._link_filter(sender, receiver):
            stats.record_drop("link-filter")
            return
        if self._partition_group is not None and self._partition_blocks(sender, receiver):
            stats.record_drop("partition")
            return
        config = self.config
        if config.drop_probability and self._rng.random() < config.drop_probability:
            stats.record_drop("loss")
            return

        now = self.simulator.now()
        if size_bytes:
            bandwidth = config.node_bandwidth
            if bandwidth:
                bandwidth = bandwidth.get(sender, config.bandwidth_bytes_per_s)
            else:
                bandwidth = config.bandwidth_bytes_per_s
            transmission = size_bytes / bandwidth
        else:
            transmission = 0.0
        uplink_free = self._uplink_free_at.get(sender, 0.0)
        if uplink_free < now:
            uplink_free = now
        departure = uplink_free + transmission
        self._uplink_free_at[sender] = departure
        propagation = self.latency.delay(sender, receiver, self._rng) * self._latency_scale
        if propagation < 0.0:
            raise ValueError(
                f"latency model produced a negative delay for {sender}->{receiver}"
            )
        arrival = departure + propagation + config.processing_delay
        if self._local[receiver]:
            self._schedule_call(arrival, self._deliver, sender, receiver, message)
        else:
            self._outboxes[self._shard_of[receiver]].append(
                (arrival, sender, receiver, message)
            )

        if (
            config.duplicate_probability
            and self._rng.random() < config.duplicate_probability
        ):
            stats.messages_duplicated += 1
            extra = self.latency.delay(sender, receiver, self._rng) * self._latency_scale
            duplicate_arrival = departure + extra + config.processing_delay
            if self._local[receiver]:
                self._schedule_call(
                    duplicate_arrival, self._deliver, sender, receiver, message
                )
            else:
                self._outboxes[self._shard_of[receiver]].append(
                    (duplicate_arrival, sender, receiver, message)
                )

    def multicast(
        self, sender: int, receivers: "list[int] | tuple[int, ...]", message: Any, size_bytes: int = 0
    ) -> None:
        """Fused fan-out with the local/remote split folded into the loop."""
        stats = self.stats
        config = self.config
        link_filter = self._link_filter
        drop_probability = config.drop_probability
        duplicate_probability = config.duplicate_probability
        partitioned = self._partition_group is not None
        processing_delay = config.processing_delay
        latency_scale = self._latency_scale
        rng_random = self._rng.random
        deliver = self._deliver
        local = self._local
        shard_of = self._shard_of
        outboxes = self._outboxes
        bytes_per_node = stats.bytes_per_node
        messages_per_node = stats.messages_per_node
        if size_bytes:
            bandwidth = config.node_bandwidth
            if bandwidth:
                bandwidth = bandwidth.get(sender, config.bandwidth_bytes_per_s)
            else:
                bandwidth = config.bandwidth_bytes_per_s
            transmission = size_bytes / bandwidth
        else:
            transmission = 0.0
        now = self.simulator.now()
        uplink_free = self._uplink_free_at.get(sender, 0.0)

        # -------------- DES fast path: inline latency, heap push or outbox
        queue = self._fast_queue
        profile = (
            self.latency.multicast_profile(sender, receivers)
            if queue is not None
            and link_filter is None
            and not partitioned
            and not drop_probability
            and not duplicate_probability
            else None
        )
        if profile is not None:
            base_row, jitter = profile
            heap = queue._heap
            seq = queue._counter
            push = heapq.heappush
            sent = 0
            pushed = 0
            if uplink_free < now:
                uplink_free = now
            for receiver in receivers:
                sent += 1
                departure = uplink_free = uplink_free + transmission
                if receiver == sender:
                    arrival = departure + processing_delay
                else:
                    arrival = (
                        departure
                        + (base_row[receiver] + rng_random() * jitter) * latency_scale
                        + processing_delay
                    )
                if local[receiver]:
                    push(heap, (arrival, next(seq), deliver, sender, receiver, message))
                    pushed += 1
                else:
                    outboxes[shard_of[receiver]].append(
                        (arrival, sender, receiver, message)
                    )
            if sent:
                queue._live += pushed
                total_bytes = size_bytes * sent
                stats.messages_sent += sent
                stats.bytes_sent += total_bytes
                bytes_per_node[sender] = bytes_per_node.get(sender, 0) + total_bytes
                messages_per_node[sender] = messages_per_node.get(sender, 0) + sent
                self._uplink_free_at[sender] = uplink_free
            return

        # ----------------------------- general path: per-receiver delay()
        delay = self.latency.delay
        schedule_call = self._schedule_call
        sent = 0
        total_bytes = 0
        for receiver in receivers:
            sent += 1
            total_bytes += size_bytes
            if link_filter is not None and not link_filter(sender, receiver):
                stats.record_drop("link-filter")
                continue
            if partitioned and self._partition_blocks(sender, receiver):
                stats.record_drop("partition")
                continue
            if drop_probability and rng_random() < drop_probability:
                stats.record_drop("loss")
                continue
            if uplink_free < now:
                uplink_free = now
            departure = uplink_free + transmission
            uplink_free = departure
            propagation = delay(sender, receiver, self._rng) * latency_scale
            if propagation < 0.0:
                raise ValueError(
                    f"latency model produced a negative delay for {sender}->{receiver}"
                )
            arrival = departure + propagation + processing_delay
            if local[receiver]:
                schedule_call(arrival, deliver, sender, receiver, message)
            else:
                outboxes[shard_of[receiver]].append((arrival, sender, receiver, message))
            if duplicate_probability and rng_random() < duplicate_probability:
                stats.messages_duplicated += 1
                extra = delay(sender, receiver, self._rng) * latency_scale
                duplicate_arrival = departure + extra + processing_delay
                if local[receiver]:
                    schedule_call(duplicate_arrival, deliver, sender, receiver, message)
                else:
                    outboxes[shard_of[receiver]].append(
                        (duplicate_arrival, sender, receiver, message)
                    )
        if sent:
            stats.messages_sent += sent
            stats.bytes_sent += total_bytes
            bytes_per_node[sender] = bytes_per_node.get(sender, 0) + total_bytes
            messages_per_node[sender] = messages_per_node.get(sender, 0) + sent
            self._uplink_free_at[sender] = uplink_free

    # ----------------------------------------------------------- barrier IPC
    def drain_outboxes(self) -> Tuple[List[Tuple[int, bytes]], float]:
        """Flush every non-empty outbox as ``(dest_shard, frame)`` pairs.

        Returns the frames plus the minimum arrival time across all flushed
        entries (``inf`` when nothing was pending) — the hub folds that into
        its idle-skip target so a barrier never outruns in-flight traffic.
        """
        frames: List[Tuple[int, bytes]] = []
        min_arrival = _INFINITY
        outboxes = self._outboxes
        for dest_shard in range(len(outboxes)):
            box = outboxes[dest_shard]
            if not box:
                continue
            for entry in box:
                if entry[0] < min_arrival:
                    min_arrival = entry[0]
            frames.append((dest_shard, encode_batch(box)))
            outboxes[dest_shard] = []
        return frames, min_arrival

    def enqueue_remote(self, entries: List[RemoteEntry]) -> None:
        """Deliver incoming cross-shard entries into the local event heap.

        Callers pass the round's entries already merged in deterministic
        order (source-shard order, stably sorted by arrival); each gets the
        next local sequence number, so tie-breaks at equal timestamps are
        reproducible.  Every arrival is checked against the executed
        horizon — a violation means the lookahead contract broke.
        """
        horizon = self._horizon
        push_call = self.simulator.queue.push_call
        deliver = self._deliver
        margin = self.min_margin
        for arrival, sender, receiver, message in entries:
            gap = arrival - horizon
            if gap < 0.0:
                raise ShardSyncError(
                    f"shard {self.shard_id}: remote message {sender}->{receiver} "
                    f"arrives at {arrival} but the shard already executed "
                    f"through {horizon} (lookahead violated by {-gap})"
                )
            if gap < margin:
                margin = gap
            push_call(arrival, deliver, sender, receiver, message)
        self.min_margin = margin

    def set_horizon(self, time: float) -> None:
        """Record that every local event strictly before ``time`` has run."""
        self._horizon = time

    @property
    def horizon(self) -> float:
        return self._horizon
