"""Conservative-parallel DES support: partitioning, lookahead, IPC, transport.

This package is the machinery behind
:class:`repro.runtime.sharded.ShardedDESRuntime`: it decides which replicas
live on which worker process (:mod:`repro.shard.partition`), derives the
provably-safe synchronization window from the scenario's minimum cross-shard
delay (:mod:`repro.shard.lookahead`), frames cross-shard message batches for
the IPC channel (:mod:`repro.shard.ipc`), splits the network fan-out into
local heap pushes and remote outbox appends (:mod:`repro.shard.transport`),
and runs the per-worker barrier loop (:mod:`repro.shard.worker`).

Everything here is message-passing only: workers share no mutable state
(enforced by the SHARD-001 staticcheck rule), and every payload crossing the
process boundary is a frozen-slots flyweight riding the framed channel in
:mod:`repro.shard.ipc` (SHARD-002).
"""

from __future__ import annotations

from repro.shard.lookahead import Lookahead, derive_lookahead
from repro.shard.partition import ShardPlan, plan_shards

__all__ = [
    "Lookahead",
    "ShardPlan",
    "derive_lookahead",
    "plan_shards",
]
