"""Lookahead derivation: how far a shard may run past the barrier.

Conservative parallel DES is safe iff no shard executes past the earliest
time a not-yet-seen cross-shard message could arrive.  In this transport
(see :class:`repro.sim.network.Network`) a message sent at time ``t``
arrives at

    ``t + transmission + propagation * latency_scale + processing_delay``

with ``transmission >= 0``, ``propagation >= min_delay(sender, receiver)``
(the latency model's deterministic lower bound), and ``latency_scale``
following the scenario's degradation timeline.  The **lookahead** is

    ``L = min over cross-shard (s, r) of min_delay(s, r) * min_scale
        + processing_delay``

where ``min_scale`` is the smallest latency scale the fault timeline can
ever install (degradation factors below 1.0 shrink delays, so they shrink
the lookahead too).  Any message sent during a synchronized window
``[T, T + L)`` therefore arrives at ``>= T + L`` — messages exchanged at a
barrier are never needed inside the window that produced them, which is the
safety proof :class:`repro.runtime.sharded.ShardedDESRuntime` relies on.

Derivation is exact, not sampled: it enumerates region pairs when the model
exposes ``region_of`` (O(regions²) instead of O(n²)) and falls back to the
full replica-pair scan otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.shard.partition import ShardPlan
from repro.sim.faults import FaultConfig
from repro.sim.latency import LatencyModel
from repro.sim.network import NetworkConfig


@dataclass(frozen=True)
class Lookahead:
    """The derived synchronization window and its provenance."""

    #: the safe window width in simulated seconds (> 0)
    seconds: float
    #: minimum cross-shard propagation bound before scaling (diagnostics)
    min_propagation: float
    #: smallest latency scale the fault timeline can install
    min_scale: float
    #: the receiver-side processing delay folded into every arrival
    processing_delay: float
    #: the (sender, receiver) pair realising the minimum (diagnostics)
    min_pair: Tuple[int, int]

    def describe(self) -> str:
        return (
            f"L={self.seconds * 1e3:.3f}ms "
            f"(min propagation {self.min_propagation * 1e3:.3f}ms "
            f"x scale {self.min_scale} + processing "
            f"{self.processing_delay * 1e6:.0f}us, "
            f"link {self.min_pair[0]}->{self.min_pair[1]})"
        )


def _min_cross_pair(
    plan: ShardPlan, latency: LatencyModel
) -> Tuple[float, Tuple[int, int]]:
    """The smallest ``min_delay`` over ordered cross-shard replica pairs."""
    region_of = getattr(latency, "region_of", None)
    best = float("inf")
    best_pair = (-1, -1)
    if region_of is not None:
        # One representative replica per (shard, region): min_delay depends
        # only on the region pair, so O(regions²) pairs suffice.
        reps: Dict[Tuple[int, str], int] = {}
        for replica, shard in enumerate(plan.assignment):
            reps.setdefault((shard, region_of(replica)), replica)
        entries: List[Tuple[int, int]] = [
            (shard, replica) for (shard, _region), replica in sorted(reps.items())
        ]
        for shard_a, sender in entries:
            for shard_b, receiver in entries:
                if shard_a == shard_b:
                    continue
                bound = latency.min_delay(sender, receiver)
                if bound < best:
                    best = bound
                    best_pair = (sender, receiver)
        return best, best_pair
    assignment = plan.assignment
    for sender, shard_a in enumerate(assignment):
        for receiver, shard_b in enumerate(assignment):
            if shard_a == shard_b:
                continue
            bound = latency.min_delay(sender, receiver)
            if bound < best:
                best = bound
                best_pair = (sender, receiver)
    return best, best_pair


def derive_lookahead(
    plan: ShardPlan,
    latency: LatencyModel,
    network_config: Optional[NetworkConfig] = None,
    faults: Optional[FaultConfig] = None,
) -> Lookahead:
    """Derive the provably-safe barrier window for ``plan`` on ``latency``."""
    if plan.shards < 2:
        raise ValueError("lookahead is only defined for >= 2 shards")
    min_propagation, min_pair = _min_cross_pair(plan, latency)
    min_scale = 1.0
    if faults is not None:
        for spec in faults.degradations:
            if spec.factor < min_scale:
                min_scale = spec.factor
    processing_delay = (
        network_config.processing_delay if network_config is not None else 0.0
    )
    seconds = min_propagation * min_scale + processing_delay
    if not seconds > 0.0:
        raise ValueError(
            "non-positive lookahead: the minimum cross-shard delay bound is "
            f"{min_propagation} (pair {min_pair}) x scale {min_scale} + "
            f"processing {processing_delay}; this scenario's latency model "
            "gives the conservative barrier no safe window — run it on the "
            "single-process DES instead"
        )
    return Lookahead(
        seconds=seconds,
        min_propagation=min_propagation,
        min_scale=min_scale,
        processing_delay=processing_delay,
        min_pair=min_pair,
    )
