"""Replica -> shard placement for the conservative-parallel DES.

The lookahead of the sharded runtime is the *minimum cross-shard* link
delay, so placement decides how much parallel slack the barrier protocol
gets.  Two strategies:

* ``"affine"`` (default) — region-affine placement: replicas in the same
  region (as reported by the latency model's ``region_of``) stay on the same
  shard whenever ``shards <= #regions``, so every cross-shard link is a WAN
  link and the lookahead is the WAN floor (tens of milliseconds) rather than
  the intra-region floor (sub-millisecond).  Each consensus instance's
  leader traffic is symmetric across regions, so this is also the
  instance-affine choice: the instances a shard's replicas lead stay paced
  by shard-local timers.  When the model has no regions (LAN/uniform) this
  degrades to balanced contiguous blocks.
* ``"hash"`` — ``replica % shards``: the fallback that ignores topology.
  Correct under any model, but in a WAN it splits every region across
  shards and shrinks the lookahead to the intra-region floor.

Placement is a pure function of ``(n, shards, latency model, strategy)`` —
no RNG — so the same cell always produces the same plan (sweep-cache and
determinism-test requirement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.latency import LatencyModel

#: placement strategies accepted by :func:`plan_shards`
STRATEGIES = ("affine", "hash")


@dataclass(frozen=True)
class ShardPlan:
    """An immutable replica -> shard assignment."""

    shards: int
    #: ``assignment[replica_id]`` is the shard hosting that replica
    assignment: Tuple[int, ...]
    strategy: str

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("a plan needs at least one shard")
        used = sorted(dict.fromkeys(self.assignment))
        if used != list(range(self.shards)):
            raise ValueError(
                f"assignment uses shards {used}, expected 0..{self.shards - 1} "
                "(every shard must host at least one replica)"
            )

    @property
    def n(self) -> int:
        return len(self.assignment)

    def shard_of(self, replica: int) -> int:
        return self.assignment[replica]

    def members(self, shard: int) -> Tuple[int, ...]:
        return tuple(
            replica
            for replica, owner in enumerate(self.assignment)
            if owner == shard
        )

    def members_by_shard(self) -> List[Tuple[int, ...]]:
        by_shard: List[List[int]] = [[] for _ in range(self.shards)]
        for replica, owner in enumerate(self.assignment):
            by_shard[owner].append(replica)
        return [tuple(members) for members in by_shard]

    def describe(self) -> str:
        sizes = [len(m) for m in self.members_by_shard()]
        return f"{self.strategy}({self.shards} shards, sizes={sizes})"


def _region_groups(n: int, latency: LatencyModel) -> List[List[int]]:
    """Replicas grouped by region, in first-appearance region order.

    Returns one group per distinct region; a model without ``region_of``
    yields a single group (no topology information to exploit).
    """
    region_of = getattr(latency, "region_of", None)
    if region_of is None:
        return [list(range(n))]
    groups: Dict[str, List[int]] = {}
    for replica in range(n):
        groups.setdefault(region_of(replica), []).append(replica)
    return list(groups.values())


def _affine_assignment(n: int, shards: int, latency: LatencyModel) -> List[int]:
    """Region-affine placement, balanced by replica count.

    Groups (regions) are assigned whole to the least-loaded shard (longest
    processing time greedy, deterministic tie-break on shard id).  If there
    are fewer groups than shards, the largest groups are split — the
    lookahead then drops to the intra-region floor, which
    :func:`repro.shard.lookahead.derive_lookahead` reports honestly.
    """
    groups = _region_groups(n, latency)
    # Split the largest groups until there is one per shard.  Stable order:
    # groups keep their first-appearance order, splits append halves in
    # place of the original.
    while len(groups) < shards:
        largest_index = max(range(len(groups)), key=lambda i: len(groups[i]))
        largest = groups[largest_index]
        if len(largest) < 2:
            raise ValueError(
                f"cannot split {n} replicas across {shards} shards: "
                "a shard would be empty"
            )
        half = len(largest) // 2
        groups[largest_index : largest_index + 1] = [largest[:half], largest[half:]]
    # Greedy balance: biggest group first onto the least-loaded shard.
    order = sorted(range(len(groups)), key=lambda i: (-len(groups[i]), i))
    loads = [0] * shards
    assignment = [0] * n
    for group_index in order:
        shard = min(range(shards), key=lambda s: (loads[s], s))
        for replica in groups[group_index]:
            assignment[replica] = shard
        loads[shard] += len(groups[group_index])
    return assignment


def plan_shards(
    n: int,
    shards: int,
    latency: LatencyModel,
    strategy: str = "affine",
) -> ShardPlan:
    """Place ``n`` replicas on ``shards`` workers under ``strategy``."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards > n:
        raise ValueError(f"cannot spread n={n} replicas across {shards} shards")
    if strategy == "hash":
        assignment = [replica % shards for replica in range(n)]
    elif strategy == "affine":
        assignment = _affine_assignment(n, shards, latency)
    else:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    return ShardPlan(shards=shards, assignment=tuple(assignment), strategy=strategy)
