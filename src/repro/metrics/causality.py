"""Causal-strength computation over a run's confirmed log."""

from __future__ import annotations

from typing import Sequence

from repro.core.causality import causal_strength
from repro.core.ordering import ConfirmedBlock


def causal_strength_of_run(confirmed: Sequence[ConfirmedBlock]) -> float:
    """The CS metric of Sec. 6.4 computed on a replica's confirmed log.

    Thin wrapper over :func:`repro.core.causality.causal_strength`, kept in
    :mod:`repro.metrics` so that experiment code has a single import point
    for all run-level metrics.
    """
    return causal_strength(confirmed)
