"""Measurement: throughput, latency, causal strength, resource accounting,
and the safety/liveness auditor that self-verifies every run."""

from repro.metrics.auditor import AuditViolation, SafetyAuditReport, audit_system
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.metrics.throughput import ThroughputSeries, peak_throughput
from repro.metrics.latency import LatencyAccumulator
from repro.metrics.resources import ResourceModel, ResourceUsage, CryptoCostModel
from repro.metrics.causality import causal_strength_of_run

__all__ = [
    "AuditViolation",
    "MetricsCollector",
    "RunMetrics",
    "SafetyAuditReport",
    "audit_system",
    "ThroughputSeries",
    "peak_throughput",
    "LatencyAccumulator",
    "ResourceModel",
    "ResourceUsage",
    "CryptoCostModel",
    "causal_strength_of_run",
]
