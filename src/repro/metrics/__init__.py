"""Measurement: throughput, latency, causal strength and resource accounting."""

from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.metrics.throughput import ThroughputSeries, peak_throughput
from repro.metrics.latency import LatencyAccumulator
from repro.metrics.resources import ResourceModel, ResourceUsage, CryptoCostModel
from repro.metrics.causality import causal_strength_of_run

__all__ = [
    "MetricsCollector",
    "RunMetrics",
    "ThroughputSeries",
    "peak_throughput",
    "LatencyAccumulator",
    "ResourceModel",
    "ResourceUsage",
    "CryptoCostModel",
    "causal_strength_of_run",
]
