"""CPU and bandwidth accounting (Table 1).

The paper reports per-replica CPU utilisation (as a percentage of the 8-vCPU
machine, so 800% is the ceiling) and NIC bandwidth.  Neither protocol is
CPU-bound; the interesting observation is the *relative* cost of Ladon vs ISS
with and without stragglers.  We reproduce this with an accounting model:

* bandwidth — bytes actually pushed through the simulated network per second
  per replica (taken from :class:`repro.sim.network.NetworkStats`);
* CPU — a cost model charging a fixed number of CPU-microseconds per message
  handled and per cryptographic operation, normalised by wall-clock duration
  into a utilisation percentage comparable across protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class CryptoCostModel:
    """CPU cost (in seconds) charged per operation type.

    Defaults approximate Ed25519 sign/verify and BLS aggregation on the
    paper's c5a.2xlarge instances.
    """

    sign: float = 25e-6
    verify: float = 60e-6
    aggregate: float = 120e-6
    verify_aggregate: float = 250e-6
    message_handling: float = 3e-6
    per_byte: float = 0.3e-9

    def cost_of(self, operation: str) -> float:
        if operation == "sign":
            return self.sign
        if operation == "verify":
            return self.verify
        if operation == "aggregate":
            return self.aggregate
        if operation == "verify_aggregate":
            return self.verify_aggregate
        raise KeyError(f"unknown crypto operation {operation!r}")


@dataclass(slots=True)
class ResourceUsage:
    """Accumulated per-replica resource usage."""

    cpu_seconds: float = 0.0
    bytes_sent: int = 0
    messages_handled: int = 0
    crypto_ops: Dict[str, int] = field(default_factory=dict)

    def cpu_percent(self, duration: float, vcpus: int = 8) -> float:
        """CPU utilisation in the paper's convention (100% = one vCPU busy)."""
        if duration <= 0:
            return 0.0
        return 100.0 * self.cpu_seconds / duration

    def bandwidth_mbps(self, duration: float) -> float:
        """Outbound bandwidth in MB/s."""
        if duration <= 0:
            return 0.0
        return self.bytes_sent / duration / 1e6


class ResourceModel:
    """Accumulates resource usage across replicas during one run."""

    def __init__(self, cost_model: CryptoCostModel = None) -> None:
        self.cost_model = cost_model or CryptoCostModel()
        # Hot path: one dict lookup per operation instead of an if-chain;
        # cost_of stays the single source of the op -> cost mapping.
        self._costs: Dict[str, float] = {
            op: self.cost_model.cost_of(op)
            for op in ("sign", "verify", "aggregate", "verify_aggregate")
        }
        self._per_replica: Dict[int, ResourceUsage] = {}

    def usage(self, replica: int) -> ResourceUsage:
        if replica not in self._per_replica:
            self._per_replica[replica] = ResourceUsage()
        return self._per_replica[replica]

    def per_replica(self) -> Dict[int, ResourceUsage]:
        """The live per-replica usage records (callers must not mutate)."""
        return self._per_replica

    def absorb(self, records: Dict[int, ResourceUsage]) -> None:
        """Adopt usage records collected elsewhere (sharded-runtime merge).

        Insertion order is aggregation order (the float sums in Table 1
        iterate it), so callers pass records already in the order they want —
        the sharded merge uses ascending replica id.
        """
        self._per_replica.update(records)

    def cost_table(self) -> Dict[str, float]:
        """The op -> CPU-seconds mapping (hot-path callers index it directly)."""
        return self._costs

    # ------------------------------------------------------------- recording
    def record_crypto(self, replica: int, operation: str, count: int = 1) -> None:
        cost = self._costs.get(operation)
        if cost is None:
            raise KeyError(f"unknown crypto operation {operation!r}")
        usage = self.usage(replica)
        usage.crypto_ops[operation] = usage.crypto_ops.get(operation, 0) + count
        usage.cpu_seconds += cost * count

    def record_message_handled(self, replica: int, size_bytes: int = 0) -> None:
        usage = self.usage(replica)
        usage.messages_handled += 1
        usage.cpu_seconds += (
            self.cost_model.message_handling + self.cost_model.per_byte * size_bytes
        )

    def record_bytes_sent(self, replica: int, size_bytes: int) -> None:
        usage = self.usage(replica)
        usage.bytes_sent += size_bytes
        usage.cpu_seconds += self.cost_model.per_byte * size_bytes

    # ------------------------------------------------------------ aggregation
    def average_cpu_percent(self, duration: float) -> float:
        if not self._per_replica:
            return 0.0
        values = [u.cpu_percent(duration) for u in self._per_replica.values()]
        return sum(values) / len(values)

    def average_bandwidth_mbps(self, duration: float) -> float:
        if not self._per_replica:
            return 0.0
        values = [u.bandwidth_mbps(duration) for u in self._per_replica.values()]
        return sum(values) / len(values)

    def total_bytes(self) -> int:
        return sum(u.bytes_sent for u in self._per_replica.values())

    def total_crypto_ops(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for usage in self._per_replica.values():
            for op, count in usage.crypto_ops.items():
                totals[op] = totals.get(op, 0) + count
        return totals
