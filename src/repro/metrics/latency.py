"""End-to-end latency accounting.

Latency is measured from transaction submission until the client receives
f+1 matching replies (paper Sec. 6.2).  In the simulator the reply arrives
one client-to-replica delay after the observing replica globally confirms the
block; blocks record the representative submission time of their batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class LatencyAccumulator:
    """Weighted latency samples (one sample per confirmed block, weighted by txs)."""

    samples: List[float] = field(default_factory=list)
    weights: List[int] = field(default_factory=list)

    def record_block(self, submitted_at: float, confirmed_at: float, tx_count: int) -> None:
        if tx_count <= 0:
            return
        latency = max(0.0, confirmed_at - submitted_at)
        self.samples.append(latency)
        self.weights.append(tx_count)

    @property
    def count(self) -> int:
        return len(self.samples)

    def average(self) -> float:
        total_weight = sum(self.weights)
        if not total_weight:
            return 0.0
        return sum(s * w for s, w in zip(self.samples, self.weights)) / total_weight

    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, percentile: float) -> float:
        """Weighted percentile of per-block latencies."""
        if not self.samples:
            return 0.0
        if not 0 <= percentile <= 100:
            raise ValueError("percentile must be within [0, 100]")
        pairs = sorted(zip(self.samples, self.weights))
        total = sum(self.weights)
        threshold = total * percentile / 100.0
        running = 0.0
        for sample, weight in pairs:
            running += weight
            if running >= threshold:
                return sample
        return pairs[-1][0]
