"""Safety and liveness auditing of a finished run.

Every simulated run self-verifies the claims the paper's fault model makes
(`f < n/3` ⇒ safety): after the simulator stops, :func:`audit_system`
inspects the *honest* replicas and checks

* **partial-commit agreement** — no two honest replicas committed
  different digests at the same (instance, round): the classic safety
  property an equivocating leader with enough colluders violates;
* **confirmed-log prefix agreement** — every honest replica's globally
  confirmed log is a prefix of the longest honest log, fingerprinted by
  (sn, instance, round, rank, digest): dynamic global ordering must yield
  one total order no matter when each replica's confirmation bar moved;
* **liveness** — consensus instances that stopped partially committing
  well before the end of the run are flagged as *stalled* (censorship,
  equivocation minorities, and dead leaders all show up here).

Adversarial replicas (rank manipulators, equivocators, silencers, vote
delayers) are excluded from the honest set; crash-faulted replicas keep
their safety checks (a crashed log is a valid prefix) but are excluded
from the liveness scan.  The report rides
:class:`~repro.protocols.base.SystemResult` and its headline numbers are
folded into the metrics row (``safety_violations`` / ``stalled_instances``)
so sweeps and cached cells retain the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class AuditViolation:
    """One observed safety violation."""

    kind: str  # "conflicting-commit" | "prefix-divergence"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}: {self.detail}"


@dataclass
class SafetyAuditReport:
    """Outcome of auditing one run's honest replicas."""

    honest_replicas: Tuple[int, ...]
    adversarial_replicas: Tuple[int, ...]
    violations: Tuple[AuditViolation, ...] = ()
    stalled_instances: Tuple[int, ...] = ()
    checked_partial_commits: int = 0
    checked_confirmed: int = 0
    stall_window: float = 0.0

    @property
    def safety_ok(self) -> bool:
        return not self.violations

    @property
    def live(self) -> bool:
        return not self.stalled_instances

    def summary(self) -> str:
        verdict = "SAFE" if self.safety_ok else f"UNSAFE ({len(self.violations)} violations)"
        liveness = (
            "all instances live"
            if self.live
            else f"stalled instances: {list(self.stalled_instances)}"
        )
        return (
            f"{verdict}; {liveness}; audited {len(self.honest_replicas)} honest "
            f"replicas ({self.checked_partial_commits} partial commits, "
            f"{self.checked_confirmed} confirmed blocks)"
        )


#: one partially committed block: (round, digest, committed_at)
PartialCommit = Tuple[int, str, float]
#: one confirmed block fingerprint: (sn, instance, round, rank, digest)
ConfirmedFingerprint = Tuple[int, int, int, int, str]


def audit_logs(
    partial_by_replica: Dict[int, Dict[int, Sequence[PartialCommit]]],
    confirmed_by_replica: Dict[int, Sequence[ConfirmedFingerprint]],
    duration: float,
    stall_window: float,
    live_replicas: Optional[Sequence[int]] = None,
    liveness_instances: Optional[Sequence[int]] = None,
) -> SafetyAuditReport:
    """Audit plain per-replica logs (every replica passed in is honest).

    ``partial_by_replica`` maps replica -> instance -> partial commits;
    ``confirmed_by_replica`` maps replica -> confirmed fingerprints in log
    order.  ``live_replicas`` restricts the liveness scan (crash-faulted
    replicas legitimately fall silent); ``liveness_instances`` restricts
    which instances are expected to keep committing (DQBFT's on-demand
    ordering instance legitimately idles).
    """
    honest = tuple(sorted(partial_by_replica))
    violations: List[AuditViolation] = []

    # ---------------------------------------------- partial-commit agreement
    checked_partial = 0
    commits_by_slot: Dict[Tuple[int, int], Dict[str, List[int]]] = {}
    for replica, by_instance in partial_by_replica.items():
        for instance, commits in by_instance.items():
            for round, digest, _committed_at in commits:
                checked_partial += 1
                commits_by_slot.setdefault((instance, round), {}).setdefault(
                    digest, []
                ).append(replica)
    for (instance, round), by_digest in sorted(commits_by_slot.items()):
        if len(by_digest) > 1:
            sides = "; ".join(
                f"digest {digest[:12]}… at replicas {sorted(replicas)}"
                for digest, replicas in sorted(by_digest.items())
            )
            violations.append(
                AuditViolation(
                    kind="conflicting-commit",
                    detail=f"instance {instance} round {round}: {sides}",
                )
            )

    # ------------------------------------------------ prefix agreement
    checked_confirmed = sum(len(log) for log in confirmed_by_replica.values())
    reference_replica, reference = max(
        confirmed_by_replica.items(),
        key=lambda item: len(item[1]),
        default=(None, ()),
    )
    for replica, log in sorted(confirmed_by_replica.items()):
        if replica == reference_replica:
            continue
        for position, (own, expected) in enumerate(zip(log, reference)):
            if own != expected:
                violations.append(
                    AuditViolation(
                        kind="prefix-divergence",
                        detail=(
                            f"replica {replica} diverges from replica "
                            f"{reference_replica} at sn={position}: "
                            f"{own} != {expected}"
                        ),
                    )
                )
                break

    # ------------------------------------------------------- liveness
    live = tuple(sorted(live_replicas)) if live_replicas is not None else honest
    threshold = duration - stall_window
    stalled: List[int] = []
    instances: set = set()
    for by_instance in partial_by_replica.values():
        instances.update(by_instance.keys())
    if liveness_instances is not None:
        instances &= set(liveness_instances)
    for instance in sorted(instances):
        for replica in live:
            commits = partial_by_replica.get(replica, {}).get(instance, ())
            last = max((committed_at for _, _, committed_at in commits), default=None)
            if last is None or last < threshold:
                stalled.append(instance)
                break

    return SafetyAuditReport(
        honest_replicas=honest,
        adversarial_replicas=(),
        violations=tuple(violations),
        stalled_instances=tuple(stalled),
        checked_partial_commits=checked_partial,
        checked_confirmed=checked_confirmed,
        stall_window=stall_window,
    )


def audit_system(system, stall_window: Optional[float] = None) -> SafetyAuditReport:
    """Audit a finished :class:`~repro.protocols.base.MultiBFTSystem` run."""
    config = system.config
    faults = system.effective_faults
    adversarial = faults.adversarial_replicas()
    honest = [r for r in sorted(system.replicas) if r not in adversarial]
    crashed = {spec.replica for spec in faults.crashes}
    live = [r for r in honest if r not in crashed]

    if stall_window is None:
        # Slow enough for the slowest honest straggler's proposal cadence
        # and for a full view-change round trip; liveness below that pace
        # is a stall, not slowness.
        max_slowdown = max(
            [spec.slowdown for spec in faults.straggler_map().values()], default=1.0
        )
        stall_window = max(
            2.0 * config.view_change_timeout,
            3.0 * config.proposal_interval * max_slowdown,
        )

    partial_by_replica: Dict[int, Dict[int, List[PartialCommit]]] = {}
    confirmed_by_replica: Dict[int, List[ConfirmedFingerprint]] = {}
    for replica_id in honest:
        replica = system.replicas[replica_id]
        by_instance: Dict[int, List[PartialCommit]] = {}
        for instance_id, instance in replica.instances.items():
            # Instances keep a compact (round, digest, committed_at) log for
            # exactly this purpose — full Block histories exist only on the
            # observer in bounded-memory mode.
            log = getattr(instance, "commit_log", None)
            if log is None:
                log = [
                    (block.round, block.payload_digest, block.committed_at or 0.0)
                    for block in getattr(instance, "delivered_blocks", ())
                ]
            by_instance[instance_id] = list(log)
        partial_by_replica[replica_id] = by_instance
        confirmed_by_replica[replica_id] = replica.orderer.confirmed_fingerprints()

    report = audit_logs(
        partial_by_replica,
        confirmed_by_replica,
        duration=config.duration,
        stall_window=stall_window,
        live_replicas=live,
        # Only the paced worker instances are expected to keep committing;
        # extra instances (DQBFT's ordering instance) are demand-driven.
        liveness_instances=range(config.m),
    )
    report.adversarial_replicas = tuple(sorted(adversarial))
    return report
