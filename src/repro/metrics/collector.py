"""Per-run metric collection."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ordering import ConfirmedBlock
from repro.metrics.latency import LatencyAccumulator
from repro.metrics.resources import ResourceModel
from repro.metrics.throughput import ThroughputSeries
from repro.core.causality import causal_strength


@dataclass
class RunMetrics:
    """Summary of one experiment run (one protocol / configuration cell)."""

    protocol: str
    n: int
    stragglers: int
    duration: float
    throughput_tps: float
    peak_throughput_tps: float
    average_latency_s: float
    max_latency_s: float
    causal_strength: float
    confirmed_blocks: int
    confirmed_txs: int
    partially_committed_blocks: int
    cpu_percent: float = 0.0
    bandwidth_mbps: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        out = {
            "protocol": self.protocol,
            "n": self.n,
            "stragglers": self.stragglers,
            "duration": self.duration,
            "throughput_tps": self.throughput_tps,
            "peak_throughput_tps": self.peak_throughput_tps,
            "average_latency_s": self.average_latency_s,
            "max_latency_s": self.max_latency_s,
            "causal_strength": self.causal_strength,
            "confirmed_blocks": self.confirmed_blocks,
            "confirmed_txs": self.confirmed_txs,
            "partially_committed_blocks": self.partially_committed_blocks,
            "cpu_percent": self.cpu_percent,
            "bandwidth_mbps": self.bandwidth_mbps,
        }
        out.update(self.extra)
        return out


class MetricsCollector:
    """Collects confirmations at one observing replica and summarises the run.

    ``retain_confirmations=False`` (bounded-memory mode, used on the
    non-observer replicas) keeps the streaming accumulators but not the
    per-block history; :meth:`summarise` then raises, because the summary
    metrics (causal strength, warmup filtering) need the full list — only
    the observing replica is ever summarised.
    """

    def __init__(self, bin_width: float = 1.0, retain_confirmations: bool = True) -> None:
        self.throughput = ThroughputSeries(bin_width=bin_width)
        self.latency = LatencyAccumulator()
        self.retain_confirmations = retain_confirmations
        self.confirmed: List[ConfirmedBlock] = []
        self.confirmed_count = 0
        self.partially_committed = 0

    # ------------------------------------------------------------- recording
    def record_partial_commit(self) -> None:
        self.partially_committed += 1

    def record_confirmation(self, confirmed: ConfirmedBlock) -> None:
        block = confirmed.block
        self.confirmed_count += 1
        if self.retain_confirmations:
            self.confirmed.append(confirmed)
        self.throughput.record(confirmed.confirmed_at, block.tx_count)
        submitted = block.batch_submitted_at if block.batch_submitted_at else block.proposed_at
        self.latency.record_block(submitted, confirmed.confirmed_at, block.tx_count)

    def record_confirmations(self, confirmations: Sequence[ConfirmedBlock]) -> None:
        for confirmed in confirmations:
            self.record_confirmation(confirmed)

    # ------------------------------------------------------------- summaries
    def summarise(
        self,
        protocol: str,
        n: int,
        stragglers: int,
        duration: float,
        resources: Optional[ResourceModel] = None,
        warmup: float = 0.0,
    ) -> RunMetrics:
        if not self.retain_confirmations:
            raise RuntimeError(
                "collector runs with retain_confirmations=False (bounded "
                "memory); only the observing replica can be summarised"
            )
        effective = max(duration - warmup, 1e-9)
        confirmed_txs = sum(c.block.tx_count for c in self.confirmed if c.confirmed_at >= warmup)
        return RunMetrics(
            protocol=protocol,
            n=n,
            stragglers=stragglers,
            duration=duration,
            throughput_tps=confirmed_txs / effective,
            peak_throughput_tps=self.throughput.peak(),
            average_latency_s=self.latency.average(),
            max_latency_s=self.latency.maximum(),
            causal_strength=causal_strength(self.confirmed),
            confirmed_blocks=len(self.confirmed),
            confirmed_txs=confirmed_txs,
            partially_committed_blocks=self.partially_committed,
            cpu_percent=resources.average_cpu_percent(duration) if resources else 0.0,
            bandwidth_mbps=resources.average_bandwidth_mbps(duration) if resources else 0.0,
        )
