"""Throughput accounting.

Throughput is defined as the number of transactions delivered to clients per
second (paper Sec. 6.2); blocks count toward throughput when they become
*globally confirmed*, not when they are only partially committed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class ThroughputSeries:
    """Transactions confirmed per fixed-width time bin.

    Timestamps at or before zero land in bin 0: the series starts at the
    beginning of the run, and events stamped with a (slightly) negative time
    — e.g. a submission time extrapolated before the run started — must not
    disappear into negative bins that ``series()`` would never report.
    """

    bin_width: float = 1.0
    _bins: Dict[int, int] = field(default_factory=dict)
    total_txs: int = 0

    def _bin_index(self, time: float) -> int:
        """Floor ``time`` onto the bin grid, clamping negatives into bin 0."""
        return max(0, int(time // self.bin_width))

    def record(self, time: float, tx_count: int) -> None:
        if tx_count < 0:
            raise ValueError("tx_count must be non-negative")
        index = self._bin_index(time)
        self._bins[index] = self._bins.get(index, 0) + tx_count
        self.total_txs += tx_count

    def series(self, until: Optional[float] = None) -> List[Tuple[float, float]]:
        """Return (bin start time, tx/s) pairs, including empty bins."""
        if not self._bins and until is None:
            return []
        last = self._bin_index(until) if until is not None else max(self._bins)
        out = []
        for index in range(0, last + 1):
            count = self._bins.get(index, 0)
            out.append((index * self.bin_width, count / self.bin_width))
        return out

    def average(self, duration: float) -> float:
        """Average throughput over ``duration`` seconds (tx/s)."""
        if duration <= 0:
            return 0.0
        return self.total_txs / duration

    def peak(self) -> float:
        """Peak per-bin throughput (tx/s)."""
        if not self._bins:
            return 0.0
        return max(self._bins.values()) / self.bin_width


def peak_throughput(confirmations: Sequence[Tuple[float, int]], bin_width: float = 1.0) -> float:
    """Convenience: peak tx/s over a list of (time, tx_count) confirmations."""
    series = ThroughputSeries(bin_width=bin_width)
    for time, count in confirmations:
        series.record(time, count)
    return series.peak()
