"""The declarative adversary specification.

An :class:`AdversarySpec` bundles a tuple of catalog attacks
(:mod:`repro.adversary.attacks`) into one frozen, hashable value that

* composes into a :class:`~repro.scenario.spec.ScenarioSpec` (the
  ``adversary`` field) and into :class:`~repro.bench.config.ExperimentCell`
  (by registry name), flowing through the sweep cache key like every other
  scenario axis;
* rides the :class:`~repro.sim.faults.FaultConfig` (``adversary`` field),
  where :class:`RankManipulation` attacks lower onto the existing
  straggler machinery; and
* is armed by :meth:`install` onto the runtime timeline from
  :meth:`~repro.sim.faults.FaultInjector.arm`, creating one
  :class:`~repro.adversary.interceptor.AdversaryInterceptor` per
  adversarial replica and logging attack windows into the run's unified
  dynamics log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple, TYPE_CHECKING

from repro.adversary.attacks import Attack, Equivocation, RankManipulation
from repro.adversary.interceptor import AdversaryInterceptor
from repro.sim.faults import StragglerSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.base import Runtime


@dataclass(frozen=True)
class AdversarySpec:
    """A named, composable set of Byzantine attacks."""

    attacks: Tuple[Attack, ...]
    name: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if not self.attacks:
            raise ValueError("an adversary needs at least one attack")

    # ------------------------------------------------------------ inspection
    def replicas(self) -> FrozenSet[int]:
        """Every replica participating in any attack (the conspiracy)."""
        members: set = set()
        for attack in self.attacks:
            members.update(attack.replicas)
        return frozenset(members)

    def rank_manipulators(self) -> FrozenSet[int]:
        members: set = set()
        for attack in self.attacks:
            if isinstance(attack, RankManipulation):
                members.update(attack.replicas)
        return frozenset(members)

    def straggler_specs(self) -> Tuple[StragglerSpec, ...]:
        """Rank manipulation lowered onto the straggler machinery."""
        specs: Dict[int, StragglerSpec] = {}
        for attack in self.attacks:
            if isinstance(attack, RankManipulation):
                for replica in attack.replicas:
                    specs[replica] = StragglerSpec(
                        replica=replica, slowdown=attack.slowdown, byzantine=True
                    )
        return tuple(specs[replica] for replica in sorted(specs))

    def message_attacks(self) -> Tuple[Attack, ...]:
        """The attacks carried by the message interceptor."""
        return tuple(
            attack for attack in self.attacks if not isinstance(attack, RankManipulation)
        )

    def describe(self) -> str:
        return "; ".join(attack.describe() for attack in self.attacks)

    # ----------------------------------------------------------- composition
    def merge(self, other: "AdversarySpec") -> "AdversarySpec":
        """Both adversaries' attacks under one spec (``other`` appended)."""
        name = other.name or self.name
        return AdversarySpec(
            attacks=self.attacks + other.attacks,
            name=name,
            description=other.description or self.description,
        )

    def validate_for(self, n: int) -> None:
        out_of_range = sorted(r for r in self.replicas() if r >= n)
        if out_of_range:
            raise ValueError(
                f"adversary {self.name or self.describe()!r} names replicas "
                f"{out_of_range} but the deployment has only n={n}"
            )
        conspirators = self.replicas()
        for attack in self.attacks:
            if isinstance(attack, Equivocation):
                forged_world = [
                    r for r in range(n) if r % 2 == 1 and r not in conspirators
                ]
                if not forged_world:
                    raise ValueError(
                        "equivocation would be inert: the forged world (honest "
                        "odd-id replicas) is empty for this conspiracy at "
                        f"n={n}; pick conspirator ids that leave at least one "
                        "honest odd-id replica"
                    )

    # ---------------------------------------------------------------- arming
    def install(
        self,
        runtime: "Runtime",
        nodes: Dict[int, object],
        event_log: Optional[List[Tuple[float, str, str]]] = None,
        n: Optional[int] = None,
        local_only: bool = False,
    ) -> Dict[int, AdversaryInterceptor]:
        """Install interceptors on the adversarial nodes and arm windows.

        Called by :meth:`~repro.sim.faults.FaultInjector.arm`.  Rank
        manipulation needs no interceptor (it is lowered into the straggler
        configuration); every other attack gets activation/deactivation
        events on the runtime timeline, logged into ``event_log``.

        ``nodes`` may be one shard's slice of the deployment
        (``local_only=True``): conspirators hosted elsewhere are skipped —
        their own shard corrupts them — and ``n`` must then carry the full
        deployment size for the interceptors' quorum math.
        """
        if n is None:
            n = len(nodes)
        self.validate_for(n)
        conspirators = self.replicas()
        interceptors: Dict[int, AdversaryInterceptor] = {}
        for replica in sorted(self.replicas()):
            node = nodes.get(replica)
            if node is None:
                if local_only:
                    continue
                raise KeyError(f"cannot corrupt unknown replica {replica}")
            interceptor = AdversaryInterceptor(
                replica_id=replica, runtime=runtime, n=n, conspirators=conspirators
            )
            node.interceptor = interceptor
            interceptors[replica] = interceptor

        log = event_log if event_log is not None else []
        for attack in self.attacks:
            if isinstance(attack, RankManipulation):
                log.append((0.0, "attack:rank-manipulation", attack.describe()))
                continue
            self._arm_window(runtime, interceptors, attack, log)
        return interceptors

    def _arm_window(
        self,
        runtime: "Runtime",
        interceptors: Dict[int, AdversaryInterceptor],
        attack: Attack,
        log: List[Tuple[float, str, str]],
    ) -> None:
        targets = [
            interceptors[replica]
            for replica in attack.replicas
            if replica in interceptors
        ]
        if not targets:
            return  # no local conspirator on this shard; nothing to arm

        def _on() -> None:
            for interceptor in targets:
                interceptor.activate(attack)
            log.append((runtime.now(), f"attack:{attack.label}", attack.describe()))

        runtime.schedule_at(attack.start, _on, label=f"attack:{attack.label}:on")
        if attack.until is not None:

            def _off() -> None:
                for interceptor in targets:
                    interceptor.deactivate(attack)
                counts = {
                    interceptor.replica_id: interceptor.stats() for interceptor in targets
                }
                log.append(
                    (runtime.now(), f"attack:{attack.label}-end", f"stats={counts}")
                )

            runtime.schedule_at(attack.until, _off, label=f"attack:{attack.label}:off")
