"""The Byzantine attack catalog.

Each attack is a frozen, hashable spec describing a *behaviour* of one or
more adversarial replicas, applied at the message layer through the
per-node :class:`~repro.adversary.interceptor.AdversaryInterceptor`:

* :class:`Equivocation` — a leader sends conflicting proposals (and the
  conspiracy sends matching conflicting votes) to disjoint replica sets,
  the classic safety attack.  With fewer than ``n/3`` conspirators at most
  one of the two forks can gather a quorum, so safety holds and the attack
  degrades into a targeted liveness/latency attack; at ``n/3`` and beyond
  both forks can commit and the safety auditor reports the violation.
* :class:`Silence` — selective message suppression (censorship): per
  target replica, per message class, and/or per consensus instance (the
  bucketed workload maps transaction classes onto instances, so censoring
  an instance censors a transaction class).
* :class:`DelayedVotes` — adversarial timing: outbound protocol messages
  are withheld just under the view-change timeout, slowing every quorum
  the adversary participates in without ever triggering a view change.
* :class:`RankManipulation` — the paper's Byzantine straggler (Sec. 4.4,
  Appendix B case 3): propose at ``1/k`` rate with empty blocks and use
  only the lowest 2f+1 rank reports.  This generalises the legacy
  ``StragglerSpec.byzantine`` flag, which is now a deprecation shim onto
  this attack.

Equivocation forking is modelled for the PBFT-family instances
(pre-prepare / prepare / commit).  Chained-HotStuff proposals embed the
parent QC, which makes a naive digest fork detectable immediately, so the
interceptor leaves HotStuff messages untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.consensus.messages import (
    CheckpointMessage,
    Commit,
    HotStuffNewView,
    HotStuffProposal,
    HotStuffVote,
    NewView,
    PrePrepare,
    Prepare,
    RankMessage,
    ViewChange,
)
from repro.crypto.hashing import digest_hex

#: message classes an attack can select on
PROPOSAL = "proposal"
VOTE = "vote"
VIEW_CHANGE = "view-change"
CHECKPOINT = "checkpoint"
RANK = "rank"

_KIND_OF = {
    PrePrepare: PROPOSAL,
    HotStuffProposal: PROPOSAL,
    Prepare: VOTE,
    Commit: VOTE,
    HotStuffVote: VOTE,
    ViewChange: VIEW_CHANGE,
    NewView: VIEW_CHANGE,
    HotStuffNewView: VIEW_CHANGE,
    CheckpointMessage: CHECKPOINT,
    RankMessage: RANK,
}

#: every message class an attack's ``kinds`` filter may name
MESSAGE_KINDS: Tuple[str, ...] = tuple(sorted(set(_KIND_OF.values())))


def message_kind(message: object) -> Optional[str]:
    """Classify a protocol message, or None for unknown message types."""
    kind = _KIND_OF.get(type(message))
    if kind is not None:
        return kind
    for cls, name in _KIND_OF.items():
        if isinstance(message, cls):
            return name
    return None


def forged_digest(digest: str) -> str:
    """The deterministic conflicting digest all conspirators agree on.

    Determinism is what makes the conspiracy consistent without explicit
    coordination: every adversarial replica derives the same second-world
    digest from the true one, so forked proposals and forked votes match.
    """
    return digest_hex("equivocation", digest)


def forge_message(message: object) -> object:
    """The conflicting variant of ``message`` shown to the forged world.

    Only PBFT-family messages are forked (see module docstring); anything
    else is returned unchanged.
    """
    if isinstance(message, PrePrepare):
        return replace(message, digest=forged_digest(message.digest))
    if isinstance(message, (Prepare, Commit)):
        return replace(message, digest=forged_digest(message.digest))
    return message


# ------------------------------------------------------------------ attacks
@dataclass(frozen=True)
class Attack:
    """Base of every catalog entry: who misbehaves and when.

    ``replicas`` are the conspirators carrying this behaviour; the attack
    is active during ``[start, until)`` (``until=None`` = until the end of
    the run).
    """

    replicas: Tuple[int, ...] = ()
    start: float = 0.0
    until: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("an attack needs at least one adversarial replica")
        if len(set(self.replicas)) != len(self.replicas):
            raise ValueError("attack replicas must be distinct")
        if any(replica < 0 for replica in self.replicas):
            raise ValueError("replica ids must be non-negative")
        if self.start < 0:
            raise ValueError("attack start must be non-negative")
        if self.until is not None and self.until <= self.start:
            raise ValueError("attack window must have positive length")

    @property
    def label(self) -> str:
        name = type(self).__name__
        return "".join(
            ("-" if index else "") + char.lower() if char.isupper() else char
            for index, char in enumerate(name)
        )

    def _window(self) -> str:
        end = "end" if self.until is None else f"{self.until:g}s"
        return f"t=[{self.start:g}s, {end})"

    def describe(self) -> str:
        return f"{self.label} by {list(self.replicas)} {self._window()}"


@dataclass(frozen=True)
class Equivocation(Attack):
    """Conflicting proposals (and matching votes) to disjoint replica sets."""

    def describe(self) -> str:
        return (
            f"equivocation: replicas {list(self.replicas)} fork proposals/votes "
            f"into two worlds {self._window()}"
        )


@dataclass(frozen=True)
class Silence(Attack):
    """Selective suppression of the conspirators' outbound messages.

    Empty ``targets`` / ``kinds`` / ``instances`` mean "all"; non-empty
    tuples restrict the censorship to those receivers, message classes, or
    consensus instances.
    """

    targets: Tuple[int, ...] = ()
    kinds: Tuple[str, ...] = ()
    instances: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        unknown = set(self.kinds) - set(MESSAGE_KINDS)
        if unknown:
            raise ValueError(
                f"unknown message kinds {sorted(unknown)}; known: {list(MESSAGE_KINDS)}"
            )

    def matches(self, receiver: int, kind: str, message: object) -> bool:
        if self.targets and receiver not in self.targets:
            return False
        if self.kinds and kind not in self.kinds:
            return False
        if self.instances:
            instance = getattr(message, "instance", None)
            if instance not in self.instances:
                return False
        return True

    def describe(self) -> str:
        what = ",".join(self.kinds) if self.kinds else "all messages"
        to = f"to {list(self.targets)}" if self.targets else "to everyone"
        inst = f" on instances {list(self.instances)}" if self.instances else ""
        return (
            f"silence: replicas {list(self.replicas)} suppress {what} {to}{inst} "
            f"{self._window()}"
        )


@dataclass(frozen=True)
class DelayedVotes(Attack):
    """Withhold outbound messages for ``delay`` seconds before sending.

    Keeping ``delay`` under the view-change timeout slows every quorum and
    every round led by the adversary without ever giving the honest
    replicas cause to change views.
    """

    delay: float = 8.0
    kinds: Tuple[str, ...] = (PROPOSAL, VOTE)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.delay <= 0:
            raise ValueError("delay must be positive")
        unknown = set(self.kinds) - set(MESSAGE_KINDS)
        if unknown:
            raise ValueError(
                f"unknown message kinds {sorted(unknown)}; known: {list(MESSAGE_KINDS)}"
            )

    def describe(self) -> str:
        return (
            f"delayed-votes: replicas {list(self.replicas)} hold "
            f"{','.join(self.kinds)} for {self.delay:g}s {self._window()}"
        )


@dataclass(frozen=True)
class RankManipulation(Attack):
    """The paper's Byzantine straggler: slow, empty blocks, lowest-2f+1 ranks.

    ``slowdown`` is the ``k`` of Sec. 6.1: the manipulating leader proposes
    at ``1/k`` of the normal rate (and, like every straggler, proposes
    empty blocks).  Unlike the message-layer attacks this behaviour is
    configuration-level (it rides the straggler machinery), so ``start`` /
    ``until`` are not supported: it is active for the whole run.
    """

    slowdown: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.slowdown < 1.0:
            raise ValueError("slowdown k must be >= 1")
        if self.start != 0.0 or self.until is not None:
            raise ValueError("rank manipulation is active for the whole run")

    def describe(self) -> str:
        return (
            f"rank-manipulation: replicas {list(self.replicas)} straggle at 1/"
            f"{self.slowdown:g} rate and use only the lowest 2f+1 rank reports"
        )
