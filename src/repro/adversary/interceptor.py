"""Per-node outbound message interception.

An :class:`AdversaryInterceptor` is installed on an adversarial node's
``interceptor`` hook (:class:`repro.sim.node.Node`) by
:meth:`repro.adversary.spec.AdversarySpec.install`.  Every outbound
message of that node passes through :meth:`outbound`, which applies the
currently active attacks in a fixed pipeline:

1. **silence** — matching messages are suppressed outright;
2. **equivocation** — messages belonging to an instance led by the
   conspiracy are rewritten for receivers living in the forged world;
3. **delay** — matching messages are scheduled ``delay`` seconds late.

Attacks are toggled on/off by :class:`~repro.sim.faults.FaultInjector`
timeline events, so windows show up in the run's ``dynamics_log`` next to
crashes and partitions.

The *forged world* is the set of honest replicas with odd ids: the
conspiracy always shares the true view among itself (otherwise colluders
could not derive consistent forged votes), honest even-id replicas see the
original messages, and honest odd-id replicas see the forked ones.  With
``a`` conspirators only ``(n - a + 1) // 2 + a`` replicas back either
fork, which stays below a 2f+1 quorum for every tolerable ``a < n/3`` —
the safety argument the auditor checks experimentally.
"""

from __future__ import annotations

from typing import Any, Dict, List, TYPE_CHECKING

from repro.adversary.attacks import (
    Attack,
    DelayedVotes,
    Equivocation,
    PROPOSAL,
    Silence,
    VOTE,
    forge_message,
    message_kind,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.base import Runtime
    from repro.sim.node import Node


class AdversaryInterceptor:
    """Applies a replica's active attacks to its outbound messages."""

    def __init__(
        self,
        replica_id: int,
        runtime: "Runtime",
        n: int,
        conspirators: frozenset,
    ) -> None:
        self.replica_id = replica_id
        self.runtime = runtime
        self.n = n
        self.conspirators = frozenset(conspirators)
        self._active: List[Attack] = []
        self.suppressed = 0
        self.delayed = 0
        self.forged = 0

    # ------------------------------------------------------------- lifecycle
    def activate(self, attack: Attack) -> None:
        if attack not in self._active:
            self._active.append(attack)

    def deactivate(self, attack: Attack) -> None:
        if attack in self._active:
            self._active.remove(attack)

    @property
    def active_attacks(self) -> List[Attack]:
        return list(self._active)

    def stats(self) -> Dict[str, int]:
        return {
            "suppressed": self.suppressed,
            "delayed": self.delayed,
            "forged": self.forged,
        }

    # ------------------------------------------------------------- the hook
    def outbound(self, node: "Node", receiver: int, message: Any, size_bytes: int) -> bool:
        """Intercept one outbound message.

        Returns True when the interceptor took over delivery (the node must
        not send the original); False passes the message through untouched.
        """
        if not self._active:
            return False
        kind = message_kind(message)
        if kind is None:
            return False

        out = message
        delay = 0.0
        for attack in self._active:
            if isinstance(attack, Silence) and attack.matches(receiver, kind, message):
                self.suppressed += 1
                return True
            if isinstance(attack, DelayedVotes) and kind in attack.kinds:
                delay = max(delay, attack.delay)
            if isinstance(attack, Equivocation):
                rewritten = self._equivocate(attack, receiver, out, kind)
                if rewritten is not out:
                    out = rewritten
                    self.forged += 1

        if delay > 0.0:
            self.delayed += 1
            self._send_later(node, receiver, out, size_bytes, delay)
            return True
        if out is not message:
            node.runtime.send(node.node_id, receiver, out, size_bytes)
            return True
        return False

    # ------------------------------------------------------------- internals
    def _send_later(
        self, node: "Node", receiver: int, message: Any, size_bytes: int, delay: float
    ) -> None:
        def _release() -> None:
            if not node.crashed:
                node.runtime.send(node.node_id, receiver, message, size_bytes)

        self.runtime.schedule_after(delay, _release)

    def _in_forged_world(self, receiver: int) -> bool:
        return receiver not in self.conspirators and receiver % 2 == 1

    def _equivocate(
        self, attack: Equivocation, receiver: int, message: Any, kind: str
    ) -> Any:
        if kind not in (PROPOSAL, VOTE):
            return message
        instance = getattr(message, "instance", -1)
        if instance is None or instance < 0:
            return message
        # Fork only the instances the conspiracy leads in the message's
        # view: forging votes on honestly-led instances would censor them
        # for the forged world, which is Silence's job, not Equivocation's.
        view = getattr(message, "view", 0)
        if (instance + view) % self.n not in attack.replicas:
            return message
        if not self._in_forged_world(receiver):
            return message
        return forge_message(message)
