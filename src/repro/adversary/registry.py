"""Named adversary registry.

Built-in adversaries cover one attack each so sweeps can attribute metric
shifts to a single behaviour; compose richer conspiracies with
:class:`~repro.adversary.spec.AdversarySpec` directly and register them
with :func:`register_adversary`.

Replica ids are chosen low (replica 3, which leads instance 3 under the
one-instance-per-replica deployment) so every built-in works from ``n=4``
up.  ``equivocation-colluding`` corrupts two replicas — at ``n=4`` that is
``f >= n/3``, past the protocol's fault budget, and is exactly the
negative control the safety auditor is expected to flag.
"""

from __future__ import annotations

from typing import Dict, List

from repro.adversary.attacks import (
    DelayedVotes,
    Equivocation,
    RankManipulation,
    Silence,
)
from repro.adversary.spec import AdversarySpec

_REGISTRY: Dict[str, AdversarySpec] = {}


def register_adversary(spec: AdversarySpec, overwrite: bool = False) -> AdversarySpec:
    """Add ``spec`` to the registry under ``spec.name``."""
    if not spec.name:
        raise ValueError("registered adversaries must be named")
    if spec.name in _REGISTRY and not overwrite:
        raise ValueError(f"adversary {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_adversary(name: str) -> AdversarySpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown adversary {name!r}; available: {', '.join(available_adversaries())}"
        ) from None


def available_adversaries() -> List[str]:
    return sorted(_REGISTRY)


# ------------------------------------------------------------------ built-ins
register_adversary(
    AdversarySpec(
        name="equivocation",
        description=(
            "replica 3 forks its instance's proposals and votes into two "
            "conflicting worlds; tolerable at n >= 4 (one fork can never "
            "reach quorum), so honest odd replicas stall on instance 3 "
            "while safety holds"
        ),
        attacks=(Equivocation(replicas=(3,)),),
    )
)

register_adversary(
    AdversarySpec(
        name="equivocation-colluding",
        description=(
            "replicas 2 and 3 equivocate and cross-vote for each other's "
            "forks; at n=4 that is f >= n/3 and both forks commit — the "
            "safety auditor must report the violation (negative control)"
        ),
        attacks=(Equivocation(replicas=(2, 3)),),
    )
)

register_adversary(
    AdversarySpec(
        name="silence-observer",
        description=(
            "from t=4s replica 3 suppresses its proposals towards replica 0 "
            "only: the censored replica stops partially committing instance "
            "3 and its globally confirmed log stalls at the confirmation bar"
        ),
        attacks=(Silence(replicas=(3,), targets=(0,), kinds=("proposal",), start=4.0),),
    )
)

register_adversary(
    AdversarySpec(
        name="delayed-votes",
        description=(
            "replica 3 withholds every proposal and vote for 3s — well "
            "under the 10s view-change timeout, so rounds it leads or "
            "gates crawl without a single view change firing"
        ),
        attacks=(DelayedVotes(replicas=(3,), delay=3.0),),
    )
)

register_adversary(
    AdversarySpec(
        name="rank-manipulation",
        description=(
            "replica 3 is the paper's Byzantine straggler (Sec. 4.4): 1/10 "
            "proposal rate, empty blocks, and only the lowest 2f+1 rank "
            "reports when choosing its rank"
        ),
        attacks=(RankManipulation(replicas=(3,), slowdown=10.0),),
    )
)
