"""Behaviour-based Byzantine adversary subsystem.

The public surface:

* the attack catalog (:class:`Equivocation`, :class:`Silence`,
  :class:`DelayedVotes`, :class:`RankManipulation`) —
  :mod:`repro.adversary.attacks`;
* :class:`AdversarySpec` — a frozen, sweep-cache-keyed bundle of attacks
  that composes into scenarios, experiment cells, and fault configs;
* :class:`AdversaryInterceptor` — the per-node outbound message hook the
  attacks act through;
* the named registry (:func:`get_adversary`, :func:`register_adversary`,
  :func:`available_adversaries`) behind ``python -m repro.bench adversary``.
"""

from repro.adversary.attacks import (
    Attack,
    DelayedVotes,
    Equivocation,
    MESSAGE_KINDS,
    RankManipulation,
    Silence,
    forge_message,
    forged_digest,
    message_kind,
)
from repro.adversary.interceptor import AdversaryInterceptor
from repro.adversary.registry import (
    available_adversaries,
    get_adversary,
    register_adversary,
)
from repro.adversary.spec import AdversarySpec

__all__ = [
    "Attack",
    "AdversaryInterceptor",
    "AdversarySpec",
    "DelayedVotes",
    "Equivocation",
    "MESSAGE_KINDS",
    "RankManipulation",
    "Silence",
    "available_adversaries",
    "forge_message",
    "forged_digest",
    "get_adversary",
    "message_kind",
    "register_adversary",
]
